"""DNS-over-QUIC model (draft-huitema-quic-dnsoquic).

DoQ offers DoT-equivalent privacy with near-UDP performance: a 1-RTT
QUIC handshake (0-RTT on resumption), no TCP head-of-line blocking, and
a planned dedicated port 784. No real-world implementations existed at
the paper's writing; the model exists so the four-protocol pipeline and
the latency ablation benches can exercise the protocol's *cost shape* —
discovery sweeps the dedicated UDP port, reachability verifies the
QUIC-HELLO exchange plus the certificate, and the performance leg
separates the 1-RTT cold handshake from 0-RTT resumption.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.dnswire.message import Message
from repro.doe.do53 import classify_transport_error, error_latency_ms
from repro.doe.result import FailureKind, QueryResult
from repro.errors import TransportError, WireFormatError
from repro.netsim.host import Service, ServiceContext, TlsConfig
from repro.netsim.network import ClientEnvironment, Network
from repro.netsim.rand import SeededRng
from repro.netsim.transport import UdpExchange
from repro.resolvers.backends import ResolutionContext, ResolverBackend
from repro.telemetry import BoundCounterFamily, BoundHistogramFamily
from repro.tlssim.certs import CaStore, validate_chain

DOQ_PORT = 784

_HANDSHAKES = BoundCounterFamily("doq.handshakes", "resumed")
_HANDSHAKE_MS = BoundHistogramFamily("doq.handshake_ms", "resumed")


class DoqService(Service):
    """Server side of the DoQ model (bound on UDP port 784).

    Pending backend latency is keyed by the requesting connection
    (client address + port from the :class:`ServiceContext`), never by
    the service instance alone: interleaved clients — and shards running
    against a shared pristine world — must not observe each other's
    handshake discount.
    """

    def __init__(self, backend: ResolverBackend, tls: TlsConfig,
                 base_overhead_ms: float = 3.0):
        self.backend = backend
        self.tls = tls
        self.base_overhead_ms = base_overhead_ms
        #: Per-connection stashed backend cost, keyed by
        #: ``(client_address, port)``; ``None`` keys never occur on the
        #: transport path (it always passes a context).
        self._pending_extra_ms: Dict[Optional[Tuple[str, int]], float] = {}

    @staticmethod
    def _conn_key(ctx: Optional[ServiceContext]) -> Optional[Tuple[str, int]]:
        if ctx is None:
            return None
        return (ctx.client_address, ctx.port)

    def handle(self, payload: bytes, ctx: ServiceContext) -> bytes:
        key = self._conn_key(ctx)
        if payload == b"QUIC-HELLO":
            # Handshake round trip; no DNS payload yet.
            self._pending_extra_ms[key] = 0.0
            return b"QUIC-HELLO-ACK"
        query = Message.decode(payload)
        resolution = self.backend.resolve(query, ResolutionContext(
            client_address=ctx.client_address,
            resolver_address=ctx.server_address,
            timestamp=ctx.timestamp,
            transport="quic",
            encrypted=True,
        ))
        self._pending_extra_ms[key] = resolution.extra_ms
        return resolution.response.encode()

    def extra_latency_ms(self, rng: SeededRng,
                         ctx: Optional[ServiceContext] = None) -> float:
        key = self._conn_key(ctx)
        if key is None:
            # Legacy direct callers (no context): drain everything, which
            # for a single client matches the historical scalar stash.
            pending = sum(self._pending_extra_ms.values())
            self._pending_extra_ms.clear()
        else:
            pending = self._pending_extra_ms.pop(key, 0.0)
        return pending + rng.clipped_gauss(self.base_overhead_ms, 1.2,
                                           low=0.4)


class _QuicSession:
    __slots__ = ("resolver_ip", "established")

    def __init__(self, resolver_ip: str, established: bool = True):
        self.resolver_ip = resolver_ip
        self.established = established


class DoqClient:
    """Client side: 1-RTT handshake, 0-RTT on resumption.

    The first contact with a resolver pays the QUIC-HELLO round trip
    (1 RTT) plus certificate validation. A later *reconnect* to a
    resolver contacted before rides a cached session ticket: 0-RTT, no
    handshake exchange at all — the property the handshake-cost
    breakdown of the four-protocol study measures. Certificate
    validation is strict (DoQ, like DoH, has no non-authenticated mode
    in the draft we model); an optional fallback to DoT or clear text
    is the caller's job, matching the draft's fallback design.
    """

    def __init__(self, network: Network, rng: SeededRng, ca_store: CaStore):
        self.network = network
        self.rng = rng
        self.ca_store = ca_store
        self._sessions: Dict[Tuple[str, str], _QuicSession] = {}
        #: Resolvers contacted before, enabling 0-RTT on reconnect.
        self._known_resolvers: set = set()

    def query(self, env: ClientEnvironment, resolver_ip: str,
              message: Message, reuse: bool = True,
              timeout_s: float = 5.0,
              port: int = DOQ_PORT) -> QueryResult:
        key = (env.label, resolver_ip)
        session = self._sessions.get(key) if reuse else None
        latency = 0.0
        reused = session is not None
        if session is None:
            handshake = self._handshake(env, resolver_ip, port, timeout_s)
            if isinstance(handshake, QueryResult):
                return handshake
            latency += handshake
            session = _QuicSession(resolver_ip)
            if reuse:
                self._sessions[key] = session
        try:
            response_wire, elapsed = UdpExchange.exchange(
                self.network, env, resolver_ip, port, message.encode(),
                self.rng, timeout_s=timeout_s)
        except TransportError as error:
            self._sessions.pop(key, None)
            return QueryResult.failed(
                "doq", resolver_ip, latency + error_latency_ms(error),
                classify_transport_error(error), str(error),
                reused_connection=reused)
        latency += elapsed
        try:
            response = Message.decode(response_wire)
        except WireFormatError as error:
            return QueryResult.failed("doq", resolver_ip, latency,
                                      FailureKind.PROTOCOL, str(error),
                                      reused_connection=reused)
        return QueryResult.answered("doq", resolver_ip, latency, response,
                                    reused_connection=reused)

    def _handshake(self, env: ClientEnvironment, resolver_ip: str,
                   port: int, timeout_s: float):
        """QUIC handshake; returns latency or a failed QueryResult.

        1 RTT on first contact; a resolver seen before resumes at 0-RTT
        (no handshake exchange — the cached ticket authenticates, and
        the first data flight carries the query).
        """
        key = (env.label, resolver_ip)
        if key in self._known_resolvers:
            _HANDSHAKES.get("true").inc()
            _HANDSHAKE_MS.get("true").observe(0.0)
            return 0.0
        host = self.network.host_at(resolver_ip)
        try:
            _, elapsed = UdpExchange.exchange(
                self.network, env, resolver_ip, port, b"QUIC-HELLO",
                self.rng, timeout_s=timeout_s)
        except TransportError as error:
            return QueryResult.failed(
                "doq", resolver_ip, error_latency_ms(error),
                classify_transport_error(error), str(error))
        service = host.service_on("udp", port) if host else None
        tls = getattr(service, "tls", None)
        if tls is None:
            return QueryResult.failed("doq", resolver_ip, elapsed,
                                      FailureKind.TLS,
                                      "endpoint has no certificate")
        report = validate_chain(tls.cert_chain, self.ca_store,
                                self.network.clock.now())
        if not report.valid:
            return QueryResult.failed(
                "doq", resolver_ip, elapsed, FailureKind.CERTIFICATE,
                f"certificate invalid: "
                f"{[f.value for f in report.failures]}",
                presented_chain=tls.cert_chain, cert_report=report)
        self._known_resolvers.add(key)
        _HANDSHAKES.get("false").inc()
        _HANDSHAKE_MS.get("false").observe(elapsed)
        return elapsed

    def close_all(self) -> None:
        self._sessions.clear()
