"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's measurement legs:

* ``scan`` — run the discovery campaign (Tables 2, Figures 3-4);
* ``reachability`` — the client-side reachability study (Tables 4-6);
* ``performance`` — the latency study (Figure 9, Table 7);
* ``fourproto`` — the four-protocol differential study (DoQ/DNSCrypt
  alongside Do53/DoT/DoH, with the handshake-cost breakdown);
* ``usage`` — NetFlow + passive-DNS usage analysis (Figures 11-13);
* ``compare`` — the protocol comparison (Tables 1 and 8);
* ``report`` — everything, as one text report;
* ``release`` — write the machine-readable dataset release;
* ``telemetry`` — run a small scenario and print its metrics/spans;
* ``serve`` — run one scored serving workload (resolver-as-a-service);
* ``bench-serving`` — the qps/tail-latency serving benchmark.

Every command honours ``--metrics-out PATH`` (a global option, given
before the command name): after the command finishes, the process-wide
telemetry registry is exported as a deterministic JSON snapshot.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import telemetry
from repro.analysis import figures, tables
from repro.analysis.report import ExperimentSuite
from repro.core.parallel import ParallelConfig
from repro.telemetry.manifest import RunManifest
from repro.world.scenario import ScenarioConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="End-to-end DNS-over-Encryption measurement platform "
                    "(IMC 2019 reproduction)")
    parser.add_argument("--seed", type=int, default=2019,
                        help="scenario seed (default: 2019)")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="vantage-population scale, 1.0 = paper scale "
                             "(default: 0.02)")
    parser.add_argument("--world-scale", type=float, default=1.0,
                        metavar="X",
                        help="background address-space multiplier; above "
                             "1.0 the sweep space grows procedurally "
                             "(default: 1.0)")
    parser.add_argument("--world-mode", choices=("eager", "lazy"),
                        default=None,
                        help="world materialisation: eager builds every "
                             "host up front, lazy derives on first touch "
                             "(default: eager, or lazy when "
                             "--world-scale > 1)")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write a deterministic JSON telemetry "
                             "snapshot after the command finishes")
    parser.add_argument("--fault-plan", metavar="SPEC", default="",
                        help="inject seeded network faults, e.g. "
                             "'reset host=1.1.1.1 port=853 p=0.5; "
                             "slow host=* ms=250' (default: none)")
    parser.add_argument("--retry-attempts", type=int, default=None,
                        metavar="N",
                        help="override per-probe retry attempts "
                             "(default: each study's own policy)")
    parser.add_argument("--retry-backoff", type=float, default=0.0,
                        metavar="SECONDS",
                        help="base exponential-backoff delay between "
                             "retries, simulated seconds (default: 0)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes for sharded execution; "
                             "pure scheduling, never changes results "
                             "(default: 1, in-process)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="shard count for parallel runs; part of the "
                             "experiment definition and recorded in the "
                             "run manifest (default: 8 when --workers > 1)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("scan", help="run the DoT/DoH discovery campaign")
    camp = sub.add_parser(
        "campaign",
        help="longitudinal round-queue campaign with checkpoint/resume")
    camp.add_argument("--rounds", type=int, default=100,
                      help="scan rounds to run (default 100)")
    camp.add_argument("--checkpoint", metavar="PATH", default=None,
                      help="JSONL checkpoint file (enables kill/resume)")
    camp.add_argument("--resume", action="store_true",
                      help="resume from --checkpoint instead of starting "
                           "over")
    camp.add_argument("--stop-after-round", type=int, default=None,
                      metavar="K",
                      help="exit after round K completes (simulates a "
                           "kill; resume later with --resume)")
    camp.add_argument("--churn-rate", type=float, default=0.0,
                      help="per-round probability an unadvertised "
                           "resolver sits a round out (default 0)")
    camp.add_argument("--cert-rotation-rounds", type=int, default=0,
                      metavar="N",
                      help="reissue provider certificates every N rounds "
                           "(default 0 = never)")
    camp.add_argument("--adoption-curve", choices=("", "linear",
                                                   "logistic"),
                      default="",
                      help="growth curve shaping the open-port plan")
    camp.add_argument("--no-doh", action="store_true",
                      help="skip the final DoH discovery pass")
    sub.add_parser("reachability", help="run the reachability study")
    sub.add_parser("performance", help="run the performance study")
    sub.add_parser("fourproto",
                   help="run the four-protocol differential study "
                        "(Do53/DoT/DoH/DoQ + DNSCrypt)")
    sub.add_parser("usage", help="run the traffic usage analysis")
    sub.add_parser("compare", help="print the protocol comparison")
    sub.add_parser("report", help="run everything and print all artefacts")
    release = sub.add_parser("release",
                             help="write the dataset release to a directory")
    release.add_argument("directory", help="output directory")
    tele = sub.add_parser(
        "telemetry",
        help="run a small scenario and print its metrics and span tree")
    tele.add_argument("--rounds", type=int, default=2,
                      help="scan rounds to run (default: 2)")
    tele.add_argument("--endpoints", type=int, default=5,
                      help="reachability endpoints to probe (default: 5)")
    tele.add_argument("--format", choices=("table", "json", "prom"),
                      default="table",
                      help="stdout format (default: table)")
    serve = sub.add_parser(
        "serve",
        help="run one scored serving workload against the sim resolver")
    serve.add_argument("--duration", type=float, default=30.0,
                       help="workload duration, sim seconds (default: 30)")
    serve.add_argument("--qps", type=float, default=200.0,
                       help="offered rate at the start (default: 200)")
    serve.add_argument("--qps-end", type=float, default=None,
                       help="end rate for a linear ramp (default: flat)")
    serve.add_argument("--clients", type=int, default=32,
                       help="client population size (default: 32)")
    serve.add_argument("--names", type=int, default=1024,
                       help="queryable name-universe size (default: 1024)")
    serve.add_argument("--mix", default="do53=1,dot=1,doh=1",
                       help="protocol mix as name=weight pairs "
                            "(default: do53=1,dot=1,doh=1)")
    serve.add_argument("--concurrency", type=int, default=64,
                       help="in-flight query slots (default: 64)")
    serve.add_argument("--max-queue", type=int, default=256,
                       help="admission-control queue bound; arrivals "
                            "beyond it are shed (default: 256)")
    serve.add_argument("--format", choices=("table", "json"),
                       default="table",
                       help="scorecard output format (default: table)")
    bench = sub.add_parser(
        "bench-serving",
        help="sustained per-protocol serving benchmark -> "
             "BENCH_SERVING.json")
    bench.add_argument("--queries", type=int, default=10_000,
                       help="queries per protocol leg (default: 10000)")
    bench.add_argument("--qps", type=float, default=500.0,
                       help="offered rate per leg (default: 500)")
    bench.add_argument("--out", default="BENCH_SERVING.json",
                       help="output path (default: ./BENCH_SERVING.json)")
    bench.add_argument("--validate", metavar="PATH", default=None,
                       help="validate an existing document instead of "
                            "running the benchmark")
    bench.add_argument("--min-queries", type=int, default=None,
                       help="served-queries floor for --validate "
                            "(default: the document's own target)")
    return parser


def _parse_mix(text: str) -> dict:
    """``do53=1,dot=2`` → ``{"do53": 1.0, "dot": 2.0}``."""
    mix = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight = part.partition("=")
        try:
            mix[name.strip()] = float(weight) if weight else 1.0
        except ValueError:
            raise ValueError(f"bad mix entry {part!r}")
    return mix


def _parallel_config(args: argparse.Namespace) -> Optional[ParallelConfig]:
    """A ParallelConfig when the run opted into sharding, else None.

    ``--shards`` alone selects the sharded (in-process) path, so a
    sharded experiment can be reproduced exactly without extra workers.
    """
    if args.workers <= 1 and args.shards is None:
        return None
    return ParallelConfig(workers=max(1, args.workers), shards=args.shards)


def _make_suite(args: argparse.Namespace) -> ExperimentSuite:
    world_mode = args.world_mode
    if world_mode is None:
        # A scaled space would be pointless (and slow) to materialise
        # eagerly, so scaling opts into lazy derivation by default.
        world_mode = "lazy" if args.world_scale > 1.0 else "eager"
    config = ScenarioConfig(seed=args.seed, vantage_scale=args.scale,
                            background_sample_size=200,
                            url_dataset_noise=5_000,
                            intercepted_clients=max(
                                2, round(17 * args.scale)),
                            hijacked_routers=max(1, round(12 * args.scale)),
                            fault_plan=args.fault_plan,
                            retry_attempts=args.retry_attempts,
                            retry_backoff_s=args.retry_backoff,
                            world_mode=world_mode,
                            world_scale=args.world_scale)
    return ExperimentSuite.build(config, parallel=_parallel_config(args))


def cmd_scan(suite: ExperimentSuite) -> None:
    campaign = suite.campaign()
    print(tables.table2_text(campaign))
    print()
    dates, providers, invalid, _ = figures.figure4_series(campaign)
    for date, total, bad in zip(dates, providers, invalid):
        print(f"{date}: {total} providers, {bad} with invalid certs "
              f"({bad / total:.0%})")
    working = campaign.working_doh()
    print(f"\nDoH: {len(working)} working services, "
          f"{sum(1 for r in working if not r.in_public_list)} beyond the "
          f"public list")


def cmd_campaign(args: argparse.Namespace) -> int:
    """Longitudinal campaign through the managed round queue."""
    from repro.analysis.report import longitudinal_report
    from repro.campaign import CampaignEngine
    from repro.errors import CampaignError
    from repro.world.scenario import build_scenario

    world_mode = args.world_mode
    if world_mode is None:
        world_mode = "lazy" if args.world_scale > 1.0 else "eager"
    config = ScenarioConfig(seed=args.seed, vantage_scale=args.scale,
                            background_sample_size=200,
                            url_dataset_noise=5_000,
                            intercepted_clients=max(
                                2, round(17 * args.scale)),
                            hijacked_routers=max(1, round(12 * args.scale)),
                            fault_plan=args.fault_plan,
                            retry_attempts=args.retry_attempts,
                            retry_backoff_s=args.retry_backoff,
                            world_mode=world_mode,
                            world_scale=args.world_scale,
                            scan_rounds=max(1, args.rounds),
                            churn_rate=args.churn_rate,
                            cert_rotation_rounds=args.cert_rotation_rounds,
                            adoption_curve=args.adoption_curve)
    engine = CampaignEngine(build_scenario(config),
                            parallel=_parallel_config(args),
                            checkpoint_path=args.checkpoint)
    try:
        summary = engine.run(resume=args.resume,
                             stop_after_round=args.stop_after_round,
                             include_doh=not args.no_doh)
    except CampaignError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(longitudinal_report(summary))
    if summary.doh_records:
        working = summary.working_doh()
        print(f"\nDoH: {len(working)} working services, "
              f"{sum(1 for r in working if not r.in_public_list)} beyond "
              f"the public list")
    if not summary.completed:
        print(f"\nstopped after round {args.stop_after_round}; resume "
              f"with --resume --checkpoint {args.checkpoint}",
              file=sys.stderr)
    if args.metrics_out:
        execution = (engine.parallel.manifest_execution()
                     if engine.parallel is not None else None)
        manifest = RunManifest.collect(
            config, telemetry.get_registry(), execution=execution,
            campaign=summary.manifest_block()).as_dict()
        try:
            path = telemetry.write_snapshot(
                args.metrics_out, telemetry.get_registry(),
                telemetry.get_tracer(), manifest)
        except OSError as error:
            print(f"error: cannot write metrics snapshot: {error}",
                  file=sys.stderr)
            return 1
        print(f"wrote telemetry snapshot to {path}", file=sys.stderr)
    return 0


def cmd_reachability(suite: ExperimentSuite) -> None:
    report = suite.reachability()
    print(tables.table4_text(report))
    print()
    print(tables.table6_text(report))


def cmd_performance(suite: ExperimentSuite) -> None:
    report = suite.performance()
    summary = report.global_summary()
    print(f"Reused connections (n={summary['clients']:.0f}): "
          f"DoT {summary['dot_avg']:+.1f}/{summary['dot_median']:+.1f} ms, "
          f"DoH {summary['doh_avg']:+.1f}/{summary['doh_median']:+.1f} ms")
    print()
    print(tables.table7_text(suite.no_reuse()))


def cmd_fourproto(suite: ExperimentSuite) -> None:
    report = suite.fourproto()
    print(tables.fourproto_table_text(report))
    print()
    print(tables.handshake_table_text(report))
    print(f"\nDoQ -> DoT fallbacks: {report.fallbacks}")


def cmd_usage(suite: ExperimentSuite) -> None:
    _, report = suite.netflow_report()
    print(figures.series_text("Monthly DoT flows",
                              figures.figure11_series(report)))
    usage = suite.doh_usage()
    print(f"\nPopular DoH domains: {', '.join(usage.popular)}")


def cmd_compare(_: Optional[ExperimentSuite]) -> None:
    print(tables.table1_text())
    print()
    print(tables.table8_text())


def cmd_report(suite: ExperimentSuite) -> None:
    print(suite.render_all())


def cmd_telemetry(suite: ExperimentSuite, args: argparse.Namespace) -> None:
    """Run a miniature campaign + client leg and print its telemetry."""
    from repro.core.client.reachability import ReachabilityStudy
    from repro.core.scan.campaign import ScanCampaign

    campaign = ScanCampaign(suite.scenario)
    campaign.run(rounds=max(1, args.rounds), include_doh=True)
    study = ReachabilityStudy(suite.scenario)
    points = suite.proxyrack_network().endpoints()[:max(1, args.endpoints)]
    study.run("proxyrack", points)

    registry = telemetry.get_registry()
    tracer = telemetry.get_tracer()
    if args.format == "json":
        manifest = RunManifest.collect(suite.scenario.config, registry)
        print(telemetry.to_json(registry, tracer, manifest.as_dict()),
              end="")
    elif args.format == "prom":
        print(telemetry.to_prometheus(registry), end="")
    else:
        print(telemetry.to_table(registry, title="Telemetry"))
        print()
        print("Span tree:")
        print(telemetry.span_tree_text(tracer))


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import ScenarioError
    from repro.serving import (
        ResolverScorecard,
        ServingConfig,
        ServingEngine,
        ServingWorld,
        ServingWorldConfig,
        WorkloadSpec,
    )
    from repro.serving.engine import run_sharded

    try:
        mix = _parse_mix(args.mix)
    except ValueError as error:
        print(f"error: --mix: {error}", file=sys.stderr)
        return 2
    world_config = ServingWorldConfig(
        seed=args.seed, clients=args.clients, names=args.names)
    serving_config = ServingConfig(
        concurrency=args.concurrency, max_queue=args.max_queue)
    spec = WorkloadSpec(duration_s=args.duration, qps_start=args.qps,
                        qps_end=args.qps_end, clients=args.clients,
                        names=args.names, protocol_mix=mix)
    parallel = _parallel_config(args)
    try:
        if parallel is not None:
            report = run_sharded(world_config, spec, serving_config,
                                 parallel)
        else:
            engine = ServingEngine(ServingWorld.build(world_config),
                                   serving_config)
            try:
                report = engine.run(spec)
            finally:
                engine.close()
    except ScenarioError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    card = ResolverScorecard.from_report(report, seed=args.seed)
    if args.format == "json":
        sys.stdout.write(card.to_json_bytes().decode())
    else:
        print(card.to_table())
    return 0


def cmd_bench_serving(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serving import BenchConfig, run_serving_bench, \
        validate_document

    if args.validate is not None:
        try:
            with open(args.validate, "r", encoding="utf-8") as handle:
                document = _json.load(handle)
            validate_document(document, min_queries=args.min_queries)
        except (OSError, ValueError) as error:
            print(f"error: {args.validate}: {error}", file=sys.stderr)
            return 1
        print(f"{args.validate}: valid serving benchmark document")
        return 0
    config = BenchConfig(seed=args.seed, queries_per_protocol=args.queries,
                         qps=args.qps)
    document = run_serving_bench(
        config, log=lambda text: print(text, file=sys.stderr))
    with open(args.out, "w", encoding="utf-8") as handle:
        _json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(_json.dumps(document, indent=2, sort_keys=True))
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


def cmd_release(suite: ExperimentSuite, directory: str) -> None:
    from repro.analysis.export import write_release
    _, netflow = suite.netflow_report()
    paths = write_release(suite.campaign(), suite.reachability(),
                          netflow, directory)
    for path in paths:
        print(f"wrote {path}")


def _write_metrics(args: argparse.Namespace,
                   suite: Optional[ExperimentSuite]) -> int:
    if not args.metrics_out:
        return 0
    manifest = None
    if suite is not None:
        execution = (suite.parallel.manifest_execution()
                     if suite.parallel is not None else None)
        manifest = RunManifest.collect(suite.scenario.config,
                                       telemetry.get_registry(),
                                       execution=execution).as_dict()
    try:
        path = telemetry.write_snapshot(args.metrics_out,
                                        telemetry.get_registry(),
                                        telemetry.get_tracer(), manifest)
    except OSError as error:
        print(f"error: cannot write metrics snapshot: {error}",
              file=sys.stderr)
        return 1
    print(f"wrote telemetry snapshot to {path}", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.fault_plan:
        from repro.errors import ScenarioError
        from repro.netsim.faults import FaultPlan
        try:
            FaultPlan.parse(args.fault_plan)
        except ScenarioError as error:
            parser.error(f"--fault-plan: {error}")
    # Each invocation gets a clean registry, so snapshots describe
    # exactly one command (and same-seed runs serialise identically).
    telemetry.reset_registry()
    if args.command == "compare":
        cmd_compare(None)
        return _write_metrics(args, None)
    if args.command == "serve":
        status = cmd_serve(args)
        return status or _write_metrics(args, None)
    if args.command == "bench-serving":
        status = cmd_bench_serving(args)
        return status or _write_metrics(args, None)
    if args.command == "campaign":
        # Writes its own snapshot: the manifest needs the campaign block.
        return cmd_campaign(args)
    suite = _make_suite(args)
    if args.command == "scan":
        cmd_scan(suite)
    elif args.command == "reachability":
        cmd_reachability(suite)
    elif args.command == "performance":
        cmd_performance(suite)
    elif args.command == "fourproto":
        cmd_fourproto(suite)
    elif args.command == "usage":
        cmd_usage(suite)
    elif args.command == "report":
        cmd_report(suite)
    elif args.command == "release":
        cmd_release(suite, args.directory)
    elif args.command == "telemetry":
        cmd_telemetry(suite, args)
    return _write_metrics(args, suite)


if __name__ == "__main__":
    sys.exit(main())
