"""Convenience constructors for queries, responses and probe names."""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Optional, Sequence

from repro.dnswire.edns import OptRecord
from repro.dnswire.message import Flags, Header, Message, Question
from repro.dnswire.names import DnsName
from repro.dnswire.rdtypes import Rcode, RRClass, RRType
from repro.dnswire.records import ResourceRecord

#: OptRecord is frozen, so every defaulted-EDNS message can share one
#: instance instead of constructing a fresh record per query/response.
_DEFAULT_OPT = OptRecord()


def make_query(name: DnsName, rrtype: int = RRType.A, msg_id: int = 0,
               recursion_desired: bool = True,
               with_edns: bool = True,
               pad_block: Optional[int] = None) -> Message:
    """Build a standard query message.

    ``pad_block`` adds an EDNS(0) padding option rounding the query up to a
    multiple of that many octets (only meaningful on encrypted transports).
    """
    message = Message(
        header=Header(msg_id=msg_id, flags=Flags(rd=recursion_desired)),
        questions=(Question(name, rrtype, RRClass.IN),),
        opt=_DEFAULT_OPT if with_edns else None,
    )
    if pad_block:
        message = message.with_padding_to_block(pad_block)
    return message


def make_response(query: Message,
                  answers: Sequence[ResourceRecord] = (),
                  rcode: int = Rcode.NOERROR,
                  authorities: Sequence[ResourceRecord] = (),
                  additionals: Sequence[ResourceRecord] = (),
                  authoritative: bool = False,
                  recursion_available: bool = True) -> Message:
    """Build a response mirroring a query's id and question."""
    header = Header(
        msg_id=query.header.msg_id,
        opcode=query.header.opcode,
        flags=Flags(qr=True, aa=authoritative, rd=query.header.flags.rd,
                    ra=recursion_available),
        rcode=rcode & 0xF,
    )
    opt = _DEFAULT_OPT if query.opt is not None else None
    return Message(header, query.questions, tuple(answers),
                   tuple(authorities), tuple(additionals), opt)


def servfail(query: Message) -> Message:
    """A SERVFAIL response to ``query`` with no records."""
    return make_response(query, rcode=Rcode.SERVFAIL)


def nxdomain(query: Message,
             authorities: Iterable[ResourceRecord] = ()) -> Message:
    """An NXDOMAIN response, optionally carrying the zone SOA."""
    return make_response(query, rcode=Rcode.NXDOMAIN,
                         authorities=tuple(authorities))


def unique_probe_name(base: DnsName, token: str) -> DnsName:
    """Prefix a measurement domain with a unique token to defeat caching.

    The paper's reachability test issues "A-type request[s] of our own
    domain name, uniquely prefixed in order to avoid caching"; this builds
    those names.
    """
    return base.child(token.lower())


def rewrite_answers(response: Message,
                    address: str) -> Message:
    """Rewrite every A answer to a fixed address.

    Models resolvers like the dnsfilter.com ones the paper found, which
    "constantly resolve arbitrary domain queries to a fixed IP address"
    for non-subscribers.
    """
    rewritten = tuple(
        ResourceRecord.a(record.name, address, record.ttl)
        if record.rrtype == RRType.A else record
        for record in response.answers
    )
    return replace(response, answers=rewritten)
