"""Resource records and their rdata encodings."""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import ClassVar, Tuple

from repro.dnswire.names import DnsName
from repro.dnswire.rdtypes import RRClass, RRType
from repro.dnswire.wire import WireReader, WireWriter
from repro.errors import WireFormatError


class Rdata:
    """Base class for typed rdata. Subclasses register a type code."""

    rrtype: ClassVar[int] = 0

    def encode(self, writer: WireWriter) -> None:
        raise NotImplementedError

    @classmethod
    def decode(cls, reader: WireReader, rdlength: int) -> "Rdata":
        raise NotImplementedError

    def to_text(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class AData(Rdata):
    """IPv4 address rdata."""

    address: str
    rrtype: ClassVar[int] = RRType.A

    def encode(self, writer: WireWriter) -> None:
        parts = self.address.split(".")
        if len(parts) != 4:
            raise WireFormatError(f"bad IPv4 address {self.address!r}")
        try:
            octets = bytes(int(part) for part in parts)
        except ValueError as exc:
            raise WireFormatError(f"bad IPv4 address {self.address!r}") from exc
        writer.write_bytes(octets)

    @classmethod
    def decode(cls, reader: WireReader, rdlength: int) -> "AData":
        if rdlength != 4:
            raise WireFormatError(f"A rdata must be 4 octets, got {rdlength}")
        octets = reader.read_bytes(4)
        return cls(".".join(str(octet) for octet in octets))

    def to_text(self) -> str:
        return self.address


@dataclass(frozen=True)
class AaaaData(Rdata):
    """IPv6 address rdata, stored in compressed text form."""

    address: str
    rrtype: ClassVar[int] = RRType.AAAA

    def encode(self, writer: WireWriter) -> None:
        writer.write_bytes(_ipv6_to_bytes(self.address))

    @classmethod
    def decode(cls, reader: WireReader, rdlength: int) -> "AaaaData":
        if rdlength != 16:
            raise WireFormatError(f"AAAA rdata must be 16 octets, got {rdlength}")
        return cls(_ipv6_from_bytes(reader.read_bytes(16)))

    def to_text(self) -> str:
        return self.address


@dataclass(frozen=True)
class _SingleNameData(Rdata):
    """Shared implementation for rdata that is exactly one domain name."""

    target: DnsName

    def encode(self, writer: WireWriter) -> None:
        writer.write_name(self.target)

    @classmethod
    def decode(cls, reader: WireReader, rdlength: int):
        return cls(reader.read_name())

    def to_text(self) -> str:
        return self.target.to_text()


@dataclass(frozen=True)
class CnameData(_SingleNameData):
    rrtype: ClassVar[int] = RRType.CNAME


@dataclass(frozen=True)
class NsData(_SingleNameData):
    rrtype: ClassVar[int] = RRType.NS


@dataclass(frozen=True)
class PtrData(_SingleNameData):
    rrtype: ClassVar[int] = RRType.PTR


@dataclass(frozen=True)
class SoaData(Rdata):
    """Start-of-authority rdata."""

    mname: DnsName
    rname: DnsName
    serial: int
    refresh: int = 3600
    retry: int = 600
    expire: int = 86400
    minimum: int = 300
    rrtype: ClassVar[int] = RRType.SOA

    def encode(self, writer: WireWriter) -> None:
        writer.write_name(self.mname)
        writer.write_name(self.rname)
        for value in (self.serial, self.refresh, self.retry,
                      self.expire, self.minimum):
            writer.write_u32(value)

    @classmethod
    def decode(cls, reader: WireReader, rdlength: int) -> "SoaData":
        mname = reader.read_name()
        rname = reader.read_name()
        serial, refresh, retry, expire, minimum = (
            reader.read_u32() for _ in range(5)
        )
        return cls(mname, rname, serial, refresh, retry, expire, minimum)

    def to_text(self) -> str:
        return (f"{self.mname.to_text()} {self.rname.to_text()} "
                f"{self.serial} {self.refresh} {self.retry} "
                f"{self.expire} {self.minimum}")


@dataclass(frozen=True)
class TxtData(Rdata):
    """TXT rdata: one or more character strings."""

    strings: Tuple[bytes, ...]
    rrtype: ClassVar[int] = RRType.TXT

    @classmethod
    def from_text(cls, text: str) -> "TxtData":
        encoded = text.encode("utf-8")
        chunks = tuple(encoded[index:index + 255]
                       for index in range(0, max(len(encoded), 1), 255))
        return cls(chunks or (b"",))

    def encode(self, writer: WireWriter) -> None:
        for chunk in self.strings:
            if len(chunk) > 255:
                raise WireFormatError("TXT string exceeds 255 octets")
            writer.write_u8(len(chunk))
            writer.write_bytes(chunk)

    @classmethod
    def decode(cls, reader: WireReader, rdlength: int) -> "TxtData":
        end = reader.offset + rdlength
        strings = []
        while reader.offset < end:
            length = reader.read_u8()
            strings.append(reader.read_bytes(length))
        if reader.offset != end:
            raise WireFormatError("TXT rdata length mismatch")
        return cls(tuple(strings))

    def to_text(self) -> str:
        return " ".join(
            '"' + chunk.decode("utf-8", errors="replace") + '"'
            for chunk in self.strings
        )


@dataclass(frozen=True)
class MxData(Rdata):
    """Mail exchanger rdata."""

    preference: int
    exchange: DnsName
    rrtype: ClassVar[int] = RRType.MX

    def encode(self, writer: WireWriter) -> None:
        writer.write_u16(self.preference)
        writer.write_name(self.exchange)

    @classmethod
    def decode(cls, reader: WireReader, rdlength: int) -> "MxData":
        preference = reader.read_u16()
        return cls(preference, reader.read_name())

    def to_text(self) -> str:
        return f"{self.preference} {self.exchange.to_text()}"


@dataclass(frozen=True)
class OpaqueData(Rdata):
    """Uninterpreted rdata, used for record types we do not model."""

    rrtype_value: int
    data: bytes

    @property
    def rrtype(self) -> int:  # type: ignore[override]
        return self.rrtype_value

    def encode(self, writer: WireWriter) -> None:
        writer.write_bytes(self.data)

    def to_text(self) -> str:
        return "\\# " + str(len(self.data)) + " " + self.data.hex()


_RDATA_CLASSES = {
    RRType.A: AData,
    RRType.AAAA: AaaaData,
    RRType.CNAME: CnameData,
    RRType.NS: NsData,
    RRType.PTR: PtrData,
    RRType.SOA: SoaData,
    RRType.TXT: TxtData,
    RRType.MX: MxData,
}


def decode_rdata(rrtype: int, reader: WireReader, rdlength: int) -> Rdata:
    """Decode rdata of the given type, falling back to opaque bytes."""
    rdata_class = _RDATA_CLASSES.get(rrtype)
    if rdata_class is None:
        return OpaqueData(rrtype, reader.read_bytes(rdlength))
    start = reader.offset
    rdata = rdata_class.decode(reader, rdlength)
    consumed = reader.offset - start
    if consumed != rdlength:
        raise WireFormatError(
            f"rdata length mismatch for type {rrtype}: "
            f"declared {rdlength}, consumed {consumed}"
        )
    return rdata


@dataclass(frozen=True)
class ResourceRecord:
    """One resource record: owner name, type, class, TTL and typed rdata."""

    name: DnsName
    rrtype: int
    rrclass: int
    ttl: int
    rdata: Rdata

    @classmethod
    def a(cls, name: DnsName, address: str, ttl: int = 300) -> "ResourceRecord":
        return cls(name, RRType.A, RRClass.IN, ttl, AData(address))

    @classmethod
    def aaaa(cls, name: DnsName, address: str, ttl: int = 300) -> "ResourceRecord":
        return cls(name, RRType.AAAA, RRClass.IN, ttl, AaaaData(address))

    @classmethod
    def cname(cls, name: DnsName, target: DnsName, ttl: int = 300) -> "ResourceRecord":
        return cls(name, RRType.CNAME, RRClass.IN, ttl, CnameData(target))

    @classmethod
    def ns(cls, name: DnsName, target: DnsName, ttl: int = 3600) -> "ResourceRecord":
        return cls(name, RRType.NS, RRClass.IN, ttl, NsData(target))

    @classmethod
    def ptr(cls, name: DnsName, target: DnsName, ttl: int = 3600) -> "ResourceRecord":
        return cls(name, RRType.PTR, RRClass.IN, ttl, PtrData(target))

    @classmethod
    def soa(cls, name: DnsName, mname: DnsName, rname: DnsName,
            serial: int, ttl: int = 3600) -> "ResourceRecord":
        return cls(name, RRType.SOA, RRClass.IN, ttl,
                   SoaData(mname, rname, serial))

    @classmethod
    def txt(cls, name: DnsName, text: str, ttl: int = 300) -> "ResourceRecord":
        return cls(name, RRType.TXT, RRClass.IN, ttl, TxtData.from_text(text))

    def encode(self, writer: WireWriter) -> None:
        writer.write_name(self.name)
        writer.write_u16(self.rrtype)
        writer.write_u16(self.rrclass)
        writer.write_u32(self.ttl)
        # rdata length is back-patched by encoding into a fresh writer;
        # compression pointers into the outer message are intentionally
        # not used for rdata names to keep the patching simple and legal.
        inner = WireWriter(enable_compression=False)
        self.rdata.encode(inner)
        payload = inner.getvalue()
        writer.write_u16(len(payload))
        writer.write_bytes(payload)

    @classmethod
    def decode(cls, reader: WireReader) -> "ResourceRecord":
        name = reader.read_name()
        rrtype = reader.read_u16()
        rrclass = reader.read_u16()
        ttl = reader.read_u32()
        rdlength = reader.read_u16()
        rdata = decode_rdata(rrtype, reader, rdlength)
        return cls(name, rrtype, rrclass, ttl, rdata)

    def to_text(self) -> str:
        return (f"{self.name.to_text()} {self.ttl} "
                f"{RRClass(self.rrclass).name if self.rrclass in tuple(RRClass) else self.rrclass} "
                f"{RRType.to_text(self.rrtype)} {self.rdata.to_text()}")


def _ipv6_to_bytes(address: str) -> bytes:
    """Encode a textual IPv6 address (with `::` support) to 16 octets."""
    if ":::" in address or address.count("::") > 1:
        raise WireFormatError(f"bad IPv6 address {address!r}")
    if "::" in address:
        head_text, _, tail_text = address.partition("::")
        head = [part for part in head_text.split(":") if part]
        tail = [part for part in tail_text.split(":") if part]
        missing = 8 - len(head) - len(tail)
        if missing < 0:
            raise WireFormatError(f"bad IPv6 address {address!r}")
        groups = head + ["0"] * missing + tail
    else:
        groups = address.split(":")
    if len(groups) != 8:
        raise WireFormatError(f"bad IPv6 address {address!r}")
    try:
        return struct.pack("!8H", *(int(group, 16) for group in groups))
    except (ValueError, struct.error) as exc:
        raise WireFormatError(f"bad IPv6 address {address!r}") from exc


def _ipv6_from_bytes(data: bytes) -> str:
    """Render 16 octets as a compressed textual IPv6 address."""
    groups = struct.unpack("!8H", data)
    # Find the longest run of zero groups for :: compression.
    best_start, best_length = -1, 0
    run_start, run_length = -1, 0
    for index, group in enumerate(groups):
        if group == 0:
            if run_start < 0:
                run_start = index
            run_length += 1
            if run_length > best_length:
                best_start, best_length = run_start, run_length
        else:
            run_start, run_length = -1, 0
    if best_length < 2:
        return ":".join(f"{group:x}" for group in groups)
    head = ":".join(f"{group:x}" for group in groups[:best_start])
    tail = ":".join(f"{group:x}" for group in groups[best_start + best_length:])
    return f"{head}::{tail}"
