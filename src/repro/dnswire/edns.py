"""EDNS(0) support: the OPT pseudo-record and the padding option.

The padding option (RFC 7830) matters for DNS-over-Encryption: padding
queries to a block size reduces what an on-path observer can infer from
ciphertext lengths, one of the criteria in the paper's comparative study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.dnswire.names import DnsName
from repro.dnswire.rdtypes import EdnsOption, RRType
from repro.dnswire.wire import WireReader, WireWriter
from repro.errors import WireFormatError

DEFAULT_UDP_PAYLOAD = 1232
RECOMMENDED_PAD_BLOCK = 128


@dataclass(frozen=True)
class EdnsOptionValue:
    """One EDNS option as (code, opaque payload)."""

    code: int
    data: bytes

    def wire_length(self) -> int:
        return 4 + len(self.data)


class KeepaliveOption:
    """The edns-tcp-keepalive option (RFC 7828).

    Servers advertise how long a client may hold the TCP/TLS connection
    idle; clients use it to drive connection-reuse lifetimes — the
    mechanism behind the "tens of seconds" keepalive windows the paper
    observes in deployed DoT/DoH stacks.
    """

    @staticmethod
    def make(timeout_s: float) -> EdnsOptionValue:
        """Build a server-side option advertising an idle timeout."""
        deciseconds = max(0, min(0xFFFF, round(timeout_s * 10)))
        return EdnsOptionValue(EdnsOption.KEEPALIVE,
                               deciseconds.to_bytes(2, "big"))

    @staticmethod
    def empty() -> EdnsOptionValue:
        """The client-side form: requests a timeout without stating one."""
        return EdnsOptionValue(EdnsOption.KEEPALIVE, b"")

    @staticmethod
    def timeout_from(opt: "OptRecord") -> Optional[float]:
        """Extract the advertised idle timeout (seconds), if present."""
        for option in opt.options:
            if option.code != EdnsOption.KEEPALIVE:
                continue
            if len(option.data) != 2:
                return None
            return int.from_bytes(option.data, "big") / 10.0
        return None


class PaddingOption:
    """Helpers for the EDNS(0) padding option."""

    @staticmethod
    def make(pad_octets: int) -> EdnsOptionValue:
        return EdnsOptionValue(EdnsOption.PADDING, b"\x00" * pad_octets)

    @staticmethod
    def pad_to_block(current_length: int,
                     block: int = RECOMMENDED_PAD_BLOCK) -> EdnsOptionValue:
        """Build a padding option so the message reaches a block multiple.

        ``current_length`` is the message length *before* adding the
        option; the 4-octet option header is accounted for.
        """
        if block <= 0:
            raise WireFormatError("padding block size must be positive")
        with_header = current_length + 4
        pad = (-with_header) % block
        return PaddingOption.make(pad)


@dataclass(frozen=True)
class OptRecord:
    """The OPT pseudo-RR carrying EDNS(0) fields.

    The record owner is always the root name; class carries the maximum
    UDP payload size and TTL carries extended rcode/version/flags.
    """

    udp_payload: int = DEFAULT_UDP_PAYLOAD
    extended_rcode: int = 0
    version: int = 0
    dnssec_ok: bool = False
    options: Tuple[EdnsOptionValue, ...] = field(default_factory=tuple)

    def with_option(self, option: EdnsOptionValue) -> "OptRecord":
        return OptRecord(self.udp_payload, self.extended_rcode,
                         self.version, self.dnssec_ok,
                         self.options + (option,))

    def padding_octets(self) -> int:
        """Total octets of padding carried, 0 when unpadded."""
        return sum(len(option.data) for option in self.options
                   if option.code == EdnsOption.PADDING)

    def encode(self, writer: WireWriter) -> None:
        writer.write_name(DnsName.root())
        writer.write_u16(RRType.OPT)
        writer.write_u16(self.udp_payload)
        ttl = (self.extended_rcode << 24) | (self.version << 16)
        if self.dnssec_ok:
            ttl |= 0x8000
        writer.write_u32(ttl)
        inner = WireWriter(enable_compression=False)
        for option in self.options:
            inner.write_u16(option.code)
            inner.write_u16(len(option.data))
            inner.write_bytes(option.data)
        payload = inner.getvalue()
        writer.write_u16(len(payload))
        writer.write_bytes(payload)

    @classmethod
    def decode_body(cls, reader: WireReader) -> "OptRecord":
        """Decode an OPT record whose owner name was already consumed.

        The caller has also consumed the 16-bit type field; decoding
        starts at the class field.
        """
        udp_payload = reader.read_u16()
        ttl = reader.read_u32()
        extended_rcode = (ttl >> 24) & 0xFF
        version = (ttl >> 16) & 0xFF
        dnssec_ok = bool(ttl & 0x8000)
        rdlength = reader.read_u16()
        end = reader.offset + rdlength
        options = []
        while reader.offset < end:
            code = reader.read_u16()
            length = reader.read_u16()
            options.append(EdnsOptionValue(code, reader.read_bytes(length)))
        if reader.offset != end:
            raise WireFormatError("OPT rdata length mismatch")
        return cls(udp_payload, extended_rcode, version,
                   dnssec_ok, tuple(options))
