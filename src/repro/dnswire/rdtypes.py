"""Enumerations of DNS wire constants: types, classes, opcodes, rcodes."""

from __future__ import annotations

import enum


class RRType(enum.IntEnum):
    """Resource record types used by the platform."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    OPT = 41

    @classmethod
    def to_text(cls, value: int) -> str:
        try:
            return cls(value).name
        except ValueError:
            return f"TYPE{value}"


class RRClass(enum.IntEnum):
    """Resource record classes (only IN is used in practice)."""

    IN = 1
    CH = 3
    ANY = 255


class Opcode(enum.IntEnum):
    """DNS message opcodes."""

    QUERY = 0
    STATUS = 2
    NOTIFY = 4
    UPDATE = 5


class Rcode(enum.IntEnum):
    """DNS response codes.

    ``SERVFAIL`` responses (and responses with zero answers) are what the
    paper classifies as *Incorrect* in the reachability test, e.g. the
    Quad9 DoH forwarding-timeout misconfiguration (Finding 2.4).
    """

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5

    @classmethod
    def to_text(cls, value: int) -> str:
        try:
            return cls(value).name
        except ValueError:
            return f"RCODE{value}"


class EdnsOption(enum.IntEnum):
    """EDNS(0) option codes relevant to DNS privacy."""

    NSID = 3
    CLIENT_SUBNET = 8
    COOKIE = 10
    KEEPALIVE = 11
    PADDING = 12
