"""DNS wire protocol implementation.

This package implements the subset of the DNS protocol the measurement
platform needs, from scratch: domain names, resource records, EDNS(0)
(including the padding option used to resist traffic analysis, RFC 7830),
and the full message codec with name compression.

The bytes produced here are real RFC 1035 wire format; the simulated
transports in :mod:`repro.netsim` move them around unchanged, so every
protocol implementation in :mod:`repro.doe` round-trips genuine DNS
messages.
"""

from repro.dnswire.names import DnsName
from repro.dnswire.rdtypes import EdnsOption, Opcode, Rcode, RRClass, RRType
from repro.dnswire.records import (
    AData,
    AaaaData,
    CnameData,
    MxData,
    NsData,
    OpaqueData,
    PtrData,
    ResourceRecord,
    SoaData,
    TxtData,
)
from repro.dnswire.message import Flags, Header, Message, Question
from repro.dnswire.edns import EdnsOptionValue, KeepaliveOption, OptRecord, PaddingOption
from repro.dnswire.builder import make_query, make_response, unique_probe_name

__all__ = [
    "DnsName",
    "RRType",
    "RRClass",
    "Rcode",
    "Opcode",
    "EdnsOption",
    "ResourceRecord",
    "AData",
    "AaaaData",
    "CnameData",
    "NsData",
    "PtrData",
    "SoaData",
    "TxtData",
    "MxData",
    "OpaqueData",
    "Header",
    "Flags",
    "Question",
    "Message",
    "OptRecord",
    "EdnsOptionValue",
    "PaddingOption",
    "KeepaliveOption",
    "make_query",
    "make_response",
    "unique_probe_name",
]
