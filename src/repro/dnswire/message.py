"""DNS message model and codec (RFC 1035 section 4)."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.dnswire.edns import OptRecord
from repro.dnswire.names import DnsName
from repro.dnswire.rdtypes import Opcode, Rcode, RRClass, RRType
from repro.dnswire.records import ResourceRecord
from repro.dnswire.wire import WireReader, WireWriter
from repro.errors import WireFormatError

HEADER_LENGTH = 12


@dataclass(frozen=True)
class Flags:
    """The flag bits of a DNS header."""

    qr: bool = False
    aa: bool = False
    tc: bool = False
    rd: bool = True
    ra: bool = False

    def to_bits(self) -> int:
        bits = 0
        if self.qr:
            bits |= 0x8000
        if self.aa:
            bits |= 0x0400
        if self.tc:
            bits |= 0x0200
        if self.rd:
            bits |= 0x0100
        if self.ra:
            bits |= 0x0080
        return bits

    @classmethod
    def from_bits(cls, bits: int) -> "Flags":
        return cls(
            qr=bool(bits & 0x8000),
            aa=bool(bits & 0x0400),
            tc=bool(bits & 0x0200),
            rd=bool(bits & 0x0100),
            ra=bool(bits & 0x0080),
        )


@dataclass(frozen=True)
class Header:
    """DNS header: identifier, opcode, flags and rcode."""

    msg_id: int = 0
    opcode: int = Opcode.QUERY
    flags: Flags = field(default_factory=Flags)
    rcode: int = Rcode.NOERROR


@dataclass(frozen=True)
class Question:
    """One entry of the question section."""

    name: DnsName
    rrtype: int = RRType.A
    rrclass: int = RRClass.IN

    def encode(self, writer: WireWriter) -> None:
        writer.write_name(self.name)
        writer.write_u16(self.rrtype)
        writer.write_u16(self.rrclass)

    @classmethod
    def decode(cls, reader: WireReader) -> "Question":
        name = reader.read_name()
        rrtype = reader.read_u16()
        rrclass = reader.read_u16()
        return cls(name, rrtype, rrclass)

    def to_text(self) -> str:
        return (f"{self.name.to_text()} "
                f"{RRClass(self.rrclass).name if self.rrclass in tuple(RRClass) else self.rrclass} "
                f"{RRType.to_text(self.rrtype)}")


@dataclass(frozen=True)
class Message:
    """A complete DNS message."""

    header: Header = field(default_factory=Header)
    questions: Tuple[Question, ...] = ()
    answers: Tuple[ResourceRecord, ...] = ()
    authorities: Tuple[ResourceRecord, ...] = ()
    additionals: Tuple[ResourceRecord, ...] = ()
    opt: Optional[OptRecord] = None

    @property
    def question(self) -> Optional[Question]:
        """The first question, or None for header-only messages."""
        return self.questions[0] if self.questions else None

    def is_response(self) -> bool:
        return self.header.flags.qr

    def rcode(self) -> int:
        base = self.header.rcode
        if self.opt is not None:
            return (self.opt.extended_rcode << 4) | base
        return base

    def answer_addresses(self) -> Tuple[str, ...]:
        """All A/AAAA addresses from the answer section, in order."""
        addresses = []
        for record in self.answers:
            if record.rrtype in (RRType.A, RRType.AAAA):
                addresses.append(record.rdata.to_text())
        return tuple(addresses)

    def with_padding_to_block(self, block: int = 128) -> "Message":
        """Return a copy padded to a multiple of ``block`` octets."""
        from repro.dnswire.edns import PaddingOption
        if self.opt is not None:
            # Padding replaces any existing padding option, so the
            # baseline is this exact message — whose encoding is cached.
            base_length = len(self.encode())
            opt = self.opt
        else:
            opt = OptRecord()
            base_length = len(replace(self, opt=opt).encode())
        padded_opt = opt.with_option(
            PaddingOption.pad_to_block(base_length, block))
        return replace(self, opt=padded_opt)

    def encode(self, compress: bool = True) -> bytes:
        # Message and everything it contains are frozen, so the wire
        # form is a pure function of the instance: cache it per
        # compression mode. The cache dict lives in __dict__ (set via
        # object.__setattr__ to bypass the frozen guard) and is invisible
        # to dataclass eq/repr/replace, which only consider fields.
        cache = self.__dict__.get("_wire_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_wire_cache", cache)
        else:
            wire = cache.get(compress)
            if wire is not None:
                return wire
        writer = WireWriter(enable_compression=compress)
        flag_bits = self.header.flags.to_bits()
        flag_bits |= (self.header.opcode & 0xF) << 11
        flag_bits |= self.header.rcode & 0xF
        additional_count = len(self.additionals) + (1 if self.opt else 0)
        writer.write_bytes(struct.pack(
            "!HHHHHH", self.header.msg_id, flag_bits,
            len(self.questions), len(self.answers),
            len(self.authorities), additional_count,
        ))
        for question in self.questions:
            question.encode(writer)
        for record in self.answers + self.authorities + self.additionals:
            record.encode(writer)
        if self.opt is not None:
            self.opt.encode(writer)
        wire = writer.getvalue()
        cache[compress] = wire
        return wire

    @classmethod
    def decode(cls, data: bytes) -> "Message":
        if len(data) < HEADER_LENGTH:
            raise WireFormatError(
                f"message shorter than header: {len(data)} octets")
        reader = WireReader(data)
        msg_id, flag_bits, qdcount, ancount, nscount, arcount = (
            struct.unpack_from("!HHHHHH", data, 0))
        reader.read_bytes(HEADER_LENGTH)
        header = Header(
            msg_id=msg_id,
            opcode=(flag_bits >> 11) & 0xF,
            flags=Flags.from_bits(flag_bits),
            rcode=flag_bits & 0xF,
        )
        questions = tuple(Question.decode(reader) for _ in range(qdcount))
        answers = tuple(ResourceRecord.decode(reader) for _ in range(ancount))
        authorities = tuple(ResourceRecord.decode(reader)
                            for _ in range(nscount))
        additionals = []
        opt = None
        for _ in range(arcount):
            mark = reader.offset
            name = reader.read_name()
            rrtype = reader.read_u16()
            if rrtype == RRType.OPT:
                if opt is not None:
                    raise WireFormatError("duplicate OPT record")
                if not name.is_root():
                    raise WireFormatError("OPT owner must be the root name")
                opt = OptRecord.decode_body(reader)
            else:
                inner = WireReader(data, mark)
                additionals.append(ResourceRecord.decode(inner))
                reader = inner
        return cls(header, questions, answers, authorities,
                   tuple(additionals), opt)

    def to_text(self) -> str:
        """Multi-line dig-style rendering, for logs and debugging."""
        lines = [
            f";; id {self.header.msg_id} opcode "
            f"{Opcode(self.header.opcode).name if self.header.opcode in tuple(Opcode) else self.header.opcode} "
            f"rcode {Rcode.to_text(self.rcode())}"
        ]
        if self.questions:
            lines.append(";; QUESTION")
            lines.extend("  " + question.to_text()
                         for question in self.questions)
        for title, section in (("ANSWER", self.answers),
                               ("AUTHORITY", self.authorities),
                               ("ADDITIONAL", self.additionals)):
            if section:
                lines.append(f";; {title}")
                lines.extend("  " + record.to_text() for record in section)
        if self.opt is not None:
            lines.append(f";; EDNS version {self.opt.version}, "
                         f"udp {self.opt.udp_payload}, "
                         f"padding {self.opt.padding_octets()}")
        return "\n".join(lines)
