"""Authoritative zone data: a name-indexed record store with lookups."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.dnswire.names import DnsName
from repro.dnswire.rdtypes import Rcode, RRType
from repro.dnswire.records import ResourceRecord
from repro.errors import ScenarioError


@dataclass(frozen=True)
class LookupResult:
    """Outcome of a zone lookup.

    ``rcode`` is NOERROR or NXDOMAIN; ``records`` holds the answer chain
    (CNAMEs included, in resolution order).
    """

    rcode: int
    records: Tuple[ResourceRecord, ...]

    @property
    def is_empty(self) -> bool:
        return not self.records


class Zone:
    """One authoritative zone rooted at ``origin``.

    Supports exact-name lookups, CNAME chains within the zone, and
    wildcard owner names (a leftmost ``*`` label), which the measurement
    platform uses for its uniquely-prefixed probe domains.
    """

    def __init__(self, origin: DnsName, soa: Optional[ResourceRecord] = None):
        self.origin = origin
        self._records: Dict[Tuple[DnsName, int], List[ResourceRecord]] = {}
        self.soa = soa
        if soa is not None:
            self.add(soa)

    def add(self, record: ResourceRecord) -> None:
        if not record.name.is_subdomain_of(self.origin) and not self._is_wildcard(record.name):
            raise ScenarioError(
                f"record {record.name.to_text()} outside zone "
                f"{self.origin.to_text()}")
        key = (record.name, record.rrtype)
        self._records.setdefault(key, []).append(record)

    def add_all(self, records: Iterable[ResourceRecord]) -> None:
        for record in records:
            self.add(record)

    def contains_name(self, name: DnsName) -> bool:
        return any(stored_name == name for stored_name, _ in self._records)

    def record_count(self) -> int:
        return sum(len(rrset) for rrset in self._records.values())

    def lookup(self, name: DnsName, rrtype: int,
               max_cname_depth: int = 8) -> LookupResult:
        """Resolve ``name``/``rrtype`` inside this zone."""
        if not name.is_subdomain_of(self.origin):
            return LookupResult(Rcode.NXDOMAIN, ())
        chain: List[ResourceRecord] = []
        current = name
        for _ in range(max_cname_depth):
            exact = self._records.get((current, rrtype))
            if exact:
                return LookupResult(Rcode.NOERROR, tuple(chain) + tuple(exact))
            cname = self._records.get((current, RRType.CNAME))
            if cname:
                chain.append(cname[0])
                current = cname[0].rdata.target  # type: ignore[attr-defined]
                if not current.is_subdomain_of(self.origin):
                    # Out-of-zone target: return the partial chain.
                    return LookupResult(Rcode.NOERROR, tuple(chain))
                continue
            wildcard = self._wildcard_match(current, rrtype)
            if wildcard is not None:
                synthesized = tuple(
                    ResourceRecord(current, record.rrtype, record.rrclass,
                                   record.ttl, record.rdata)
                    for record in wildcard
                )
                return LookupResult(Rcode.NOERROR,
                                    tuple(chain) + synthesized)
            if self.contains_name(current) or self._has_descendants(current):
                # Name exists (or is an empty non-terminal) without that type.
                return LookupResult(Rcode.NOERROR, tuple(chain))
            return LookupResult(Rcode.NXDOMAIN, tuple(chain))
        return LookupResult(Rcode.SERVFAIL, tuple(chain))

    def _wildcard_match(self, name: DnsName,
                        rrtype: int) -> Optional[List[ResourceRecord]]:
        candidate = name
        while not candidate.is_root() and candidate != self.origin:
            wildcard_name = candidate.parent().child("*")
            match = self._records.get((wildcard_name, rrtype))
            if match:
                return match
            candidate = candidate.parent()
        return None

    def _has_descendants(self, name: DnsName) -> bool:
        return any(stored_name != name and stored_name.is_subdomain_of(name)
                   for stored_name, _ in self._records)

    @staticmethod
    def _is_wildcard(name: DnsName) -> bool:
        return bool(name.labels) and name.labels[0] == b"*"
