"""Domain names: parsing, validation and manipulation.

A :class:`DnsName` is an immutable sequence of labels, always handled in
its fully-qualified form internally. Comparison and hashing are
case-insensitive, as required by RFC 1035 section 2.3.3.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.errors import NameError_

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255


def _validate_label(label: bytes) -> None:
    if not label:
        raise NameError_("empty label inside a domain name")
    if len(label) > MAX_LABEL_LENGTH:
        raise NameError_(f"label exceeds {MAX_LABEL_LENGTH} octets: {label!r}")


class DnsName:
    """An immutable, case-insensitive domain name.

    >>> name = DnsName.from_text("DNS.Example.COM")
    >>> name == DnsName.from_text("dns.example.com.")
    True
    >>> name.parent().to_text()
    'example.com.'
    """

    __slots__ = ("_labels", "_folded", "_text", "_wire")

    #: Parse memo for :meth:`from_text`: the simulation builds the same
    #: hostnames over and over (probe origins, provider names), so the
    #: parsed result is interned per exact input string. Bounded: the
    #: whole map is dropped once it reaches ``_INTERN_MAX`` entries.
    _intern: dict = {}
    _INTERN_MAX = 4096

    def __init__(self, labels: Tuple[bytes, ...]):
        total = sum(len(label) + 1 for label in labels) + 1
        if total > MAX_NAME_LENGTH:
            raise NameError_(f"name exceeds {MAX_NAME_LENGTH} octets")
        for label in labels:
            _validate_label(label)
        self._labels = tuple(labels)
        self._folded = tuple(label.lower() for label in labels)
        self._text: str = ""
        self._wire: bytes = b""

    @classmethod
    def root(cls) -> "DnsName":
        """The DNS root name (zero labels)."""
        return cls(())

    @classmethod
    def from_text(cls, text: str) -> "DnsName":
        """Parse a presentation-format name such as ``"dns.example.com."``."""
        interned = cls._intern.get(text)
        if interned is not None:
            return interned
        if text in ("", "."):
            name = cls.root()
        else:
            stripped = text[:-1] if text.endswith(".") else text
            labels = []
            for part in stripped.split("."):
                if not part:
                    raise NameError_(f"empty label in {text!r}")
                labels.append(part.encode("ascii", errors="strict"))
            name = cls(tuple(labels))
        if len(cls._intern) >= cls._INTERN_MAX:
            cls._intern.clear()
        cls._intern[text] = name
        return name

    @classmethod
    def from_labels(cls, labels: Iterator[bytes]) -> "DnsName":
        return cls(tuple(labels))

    @property
    def labels(self) -> Tuple[bytes, ...]:
        return self._labels

    @property
    def folded_labels(self) -> Tuple[bytes, ...]:
        """Lower-cased labels (the comparison key), precomputed once."""
        return self._folded

    def to_text(self) -> str:
        """Render in absolute presentation format (trailing dot)."""
        if self._text:
            return self._text
        if not self._labels:
            text = "."
        else:
            text = ".".join(label.decode("ascii")
                            for label in self._labels) + "."
        self._text = text
        return text

    def to_wire(self) -> bytes:
        """Uncompressed wire encoding (len-prefixed labels + root octet).

        Cached per instance — writers with compression disabled emit
        this buffer directly instead of re-walking the labels.
        """
        if self._wire:
            return self._wire
        parts = bytearray()
        for label in self._labels:
            parts.append(len(label))
            parts += label
        parts.append(0)
        wire = bytes(parts)
        self._wire = wire
        return wire

    def to_display(self) -> str:
        """Render without the trailing dot, as users usually write names."""
        return self.to_text().rstrip(".") or "."

    def is_root(self) -> bool:
        return not self._labels

    def parent(self) -> "DnsName":
        """The name with its leftmost label removed.

        Raises :class:`~repro.errors.NameError_` for the root name, which
        has no parent.
        """
        if not self._labels:
            raise NameError_("the root name has no parent")
        return DnsName(self._labels[1:])

    def child(self, label: str) -> "DnsName":
        """Prepend one label: ``example.com. -> label.example.com.``"""
        return DnsName((label.encode("ascii"),) + self._labels)

    def is_subdomain_of(self, other: "DnsName") -> bool:
        """True when ``self`` equals ``other`` or sits below it."""
        if len(other._folded) > len(self._folded):
            return False
        if not other._folded:
            return True
        return self._folded[-len(other._folded):] == other._folded

    def second_level_domain(self) -> "DnsName":
        """The registrable two-label suffix, e.g. ``example.com.``.

        Names with fewer than two labels are returned unchanged. The paper
        groups DoH resolver hostnames and certificate Common Names by SLD;
        this helper implements that grouping.
        """
        if len(self._labels) <= 2:
            return self
        return DnsName(self._labels[-2:])

    def label_count(self) -> int:
        return len(self._labels)

    def wire_length(self) -> int:
        """Length in octets when encoded without compression."""
        return sum(len(label) + 1 for label in self._labels) + 1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DnsName):
            return NotImplemented
        return self._folded == other._folded

    def __lt__(self, other: "DnsName") -> bool:
        return self._folded[::-1] < other._folded[::-1]

    def __hash__(self) -> int:
        return hash(self._folded)

    def __len__(self) -> int:
        return len(self._labels)

    def __repr__(self) -> str:
        return f"DnsName({self.to_text()!r})"

    def __str__(self) -> str:
        return self.to_text()
