"""Low-level wire readers and writers.

:class:`WireWriter` implements RFC 1035 name compression: every name (and
every name suffix) emitted is remembered, and later occurrences are
replaced by a two-octet pointer. :class:`WireReader` follows pointers with
loop protection, which matters because hand-crafted malicious messages can
contain pointer cycles.
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple

from repro.dnswire.names import DnsName
from repro.errors import WireFormatError

_POINTER_MASK = 0xC0
_MAX_POINTER_TARGET = 0x3FFF


class WireWriter:
    """Accumulates wire-format octets with DNS name compression."""

    def __init__(self, enable_compression: bool = True):
        self._chunks: list = []
        self._length = 0
        self._offsets: Dict[Tuple[bytes, ...], int] = {}
        self._compress = enable_compression

    def write_u8(self, value: int) -> None:
        self._append(struct.pack("!B", value))

    def write_u16(self, value: int) -> None:
        self._append(struct.pack("!H", value))

    def write_u32(self, value: int) -> None:
        self._append(struct.pack("!I", value))

    def write_bytes(self, data: bytes) -> None:
        self._append(data)

    def write_name(self, name: DnsName) -> None:
        """Emit a domain name, compressing suffixes seen earlier."""
        if not self._compress:
            # No compression state to maintain: emit the name's cached
            # uncompressed encoding in one append.
            self._append(name.to_wire())
            return
        labels = name.labels
        folded = name.folded_labels
        for index in range(len(labels)):
            suffix = folded[index:]
            known = self._offsets.get(suffix) if self._compress else None
            if known is not None:
                self.write_u16(0xC000 | known)
                return
            if self._length <= _MAX_POINTER_TARGET:
                self._offsets[suffix] = self._length
            label = labels[index]
            self.write_u8(len(label))
            self.write_bytes(label)
        self.write_u8(0)

    def current_offset(self) -> int:
        return self._length

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)

    def _append(self, data: bytes) -> None:
        self._chunks.append(data)
        self._length += len(data)


class WireReader:
    """Sequential reader over a full DNS message buffer."""

    def __init__(self, data: bytes, offset: int = 0):
        self._data = data
        self._offset = offset

    @property
    def offset(self) -> int:
        return self._offset

    def remaining(self) -> int:
        return len(self._data) - self._offset

    def at_end(self) -> bool:
        return self._offset >= len(self._data)

    def read_u8(self) -> int:
        return self._read_struct("!B", 1)[0]

    def read_u16(self) -> int:
        return self._read_struct("!H", 2)[0]

    def read_u32(self) -> int:
        return self._read_struct("!I", 4)[0]

    def read_bytes(self, count: int) -> bytes:
        if self.remaining() < count:
            raise WireFormatError(
                f"truncated message: wanted {count} octets, "
                f"{self.remaining()} remain"
            )
        chunk = self._data[self._offset:self._offset + count]
        self._offset += count
        return chunk

    def read_name(self) -> DnsName:
        """Decode a (possibly compressed) domain name.

        Pointer loops and forward pointers are rejected; RFC 1035 only
        permits pointers to earlier positions in the message.
        """
        labels = []
        offset = self._offset
        jumped = False
        seen_offsets = set()
        while True:
            if offset >= len(self._data):
                raise WireFormatError("name runs past end of message")
            length = self._data[offset]
            if length & _POINTER_MASK == _POINTER_MASK:
                if offset + 1 >= len(self._data):
                    raise WireFormatError("truncated compression pointer")
                target = ((length & 0x3F) << 8) | self._data[offset + 1]
                if target >= offset:
                    raise WireFormatError("compression pointer is not backward")
                if target in seen_offsets:
                    raise WireFormatError("compression pointer loop")
                seen_offsets.add(target)
                if not jumped:
                    self._offset = offset + 2
                    jumped = True
                offset = target
                continue
            if length & _POINTER_MASK:
                raise WireFormatError(f"reserved label type 0x{length:02x}")
            if length == 0:
                if not jumped:
                    self._offset = offset + 1
                return DnsName(tuple(labels))
            if offset + 1 + length > len(self._data):
                raise WireFormatError("label runs past end of message")
            labels.append(self._data[offset + 1:offset + 1 + length])
            offset += 1 + length

    def _read_struct(self, fmt: str, size: int):
        if self.remaining() < size:
            raise WireFormatError(
                f"truncated message: wanted {size} octets, "
                f"{self.remaining()} remain"
            )
        values = struct.unpack_from(fmt, self._data, self._offset)
        self._offset += size
        return values
