"""Longitudinal campaign engine: round queue, checkpoints, streaming analysis.

Public surface:

- :class:`CampaignEngine` / :class:`CampaignSummary` — the managed
  round queue with checkpoint/resume (:mod:`repro.campaign.engine`).
- :class:`RoundFragment` / :class:`FragmentAccumulator` — per-round
  reducers and their in-order fold (:mod:`repro.campaign.fragment`).
- :class:`CheckpointStore` — the append-only JSONL checkpoint with a
  chained campaign digest (:mod:`repro.campaign.checkpoint`).
"""

from repro.campaign.checkpoint import (
    CheckpointStore,
    chain_digest,
    config_digest,
)
from repro.campaign.engine import CampaignEngine, CampaignSummary, RoundJob
from repro.campaign.fragment import (
    FRAGMENT_WIRE_VERSION,
    FragmentAccumulator,
    RoundFragment,
)

__all__ = [
    "CampaignEngine",
    "CampaignSummary",
    "CheckpointStore",
    "FRAGMENT_WIRE_VERSION",
    "FragmentAccumulator",
    "RoundFragment",
    "RoundJob",
    "chain_digest",
    "config_digest",
]
