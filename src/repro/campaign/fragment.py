"""Per-round analysis fragments and their streaming fold.

This extends the :meth:`MetricsRegistry.merge` algebra to the analysis
layer: every scan round reduces to one small :class:`RoundFragment`
(country counts, provider triples, resolver addresses — kilobytes, not
the round's full record list), and :class:`FragmentAccumulator` folds
fragments in round order into exactly the state Tables 2/4 and
Figures 3-4 need. A 100-round campaign therefore renders its artefacts
without ever holding more than one round's records in memory, and the
longitudinal test tier proves the folded output byte-identical to the
batch :class:`~repro.core.scan.campaign.CampaignResult` path.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis import figures, tables
from repro.core.scan.campaign import RoundResult, rank_country_growth
from repro.core.scan.churn import RoundChurn
from repro.errors import CampaignError
from repro.netsim.clock import format_date

#: Version pin for the fragment wire tuples (mirrors the registry's
#: WIRE_VERSION): checkpoints written by a different fragment layout
#: must fail loudly, never deserialise into garbage.
FRAGMENT_WIRE_VERSION = 1


@dataclass(frozen=True)
class RoundFragment:
    """One scan round, reduced to what incremental analysis needs."""

    round_index: int
    date: float
    total_open_estimate: int
    probed: int
    resolver_count: int
    #: Per-country resolver counts, sorted by country code.
    countries: Tuple[Tuple[str, int], ...]
    #: (provider key, address count, invalid-cert record count) in
    #: provider-group order — largest first, ties in record order — so
    #: downstream top-N cuts break ties exactly like the batch path.
    providers: Tuple[Tuple[str, int, int], ...]
    #: Resolver addresses in record order (drives churn analysis).
    addresses: Tuple[str, ...]

    @property
    def date_text(self) -> str:
        return format_date(self.date)

    @classmethod
    def from_round(cls, result: RoundResult) -> "RoundFragment":
        resolvers = result.resolvers
        countries = tuple(sorted(
            Counter(record.country for record in resolvers).items()))
        providers = tuple(
            (group.key, group.address_count,
             len(group.invalid_cert_records))
            for group in result.groups)
        return cls(
            round_index=result.round_index,
            date=result.date,
            total_open_estimate=result.stats.total_open_estimate,
            probed=result.stats.probed,
            resolver_count=len(resolvers),
            countries=countries,
            providers=providers,
            addresses=tuple(record.address for record in resolvers),
        )

    def country_counter(self) -> Counter:
        return Counter(dict(self.countries))

    def provider_pairs(self) -> List[Tuple[str, int]]:
        return [(key, count) for key, count, _ in self.providers]

    # -- wire format (flat JSON-serialisable tuples, like the registry) --

    def to_wire(self) -> tuple:
        return ("roundfragment", FRAGMENT_WIRE_VERSION,
                self.round_index, self.date,
                self.total_open_estimate, self.probed,
                self.resolver_count,
                [[code, count] for code, count in self.countries],
                [[key, count, invalid]
                 for key, count, invalid in self.providers],
                list(self.addresses))

    @classmethod
    def from_wire(cls, wire) -> "RoundFragment":
        if (not isinstance(wire, (list, tuple)) or len(wire) != 10
                or wire[0] != "roundfragment"):
            raise CampaignError(
                f"not a round-fragment wire record: {wire!r:.80}")
        if wire[1] != FRAGMENT_WIRE_VERSION:
            raise CampaignError(
                f"unsupported fragment wire version {wire[1]!r} "
                f"(this build reads version {FRAGMENT_WIRE_VERSION})")
        return cls(
            round_index=int(wire[2]),
            date=float(wire[3]),
            total_open_estimate=int(wire[4]),
            probed=int(wire[5]),
            resolver_count=int(wire[6]),
            countries=tuple((str(code), int(count))
                            for code, count in wire[7]),
            providers=tuple((str(key), int(count), int(invalid))
                            for key, count, invalid in wire[8]),
            addresses=tuple(str(address) for address in wire[9]),
        )


class FragmentAccumulator:
    """Folds in-order round fragments into the campaign's artefacts.

    Carries O(rounds + providers + one round's addresses) state: small
    per-round series for the figures, the first and latest fragments
    for Table 2, and two address sets (previous round, first-round
    cohort) for churn — never a list of past rounds.
    """

    def __init__(self) -> None:
        self.rounds_folded = 0
        self.first_fragment: Optional[RoundFragment] = None
        self.last_fragment: Optional[RoundFragment] = None
        self.dates: List[str] = []
        self.resolver_counts: List[int] = []
        self.provider_count_series: List[int] = []
        self.invalid_provider_series: List[int] = []
        self.provider_pairs_per_round: List[List[Tuple[str, int]]] = []
        self.churn: List[RoundChurn] = []
        self.survival: List[float] = []
        self._cohort: Optional[Set[str]] = None
        self._previous: Set[str] = set()

    def fold(self, fragment: RoundFragment) -> None:
        """Fold the next round in; rounds must arrive in ascending order."""
        if (self.last_fragment is not None
                and fragment.round_index <= self.last_fragment.round_index):
            raise CampaignError(
                f"fragments must fold in ascending round order: got round "
                f"{fragment.round_index} after "
                f"{self.last_fragment.round_index}")
        if self.first_fragment is None:
            self.first_fragment = fragment
        current = set(fragment.addresses)
        self.churn.append(RoundChurn(
            round_index=fragment.round_index,
            date_text=fragment.date_text,
            total=len(current),
            arrived=len(current - self._previous),
            departed=len(self._previous - current)))
        if self._cohort is None:
            self._cohort = current
        if self._cohort:
            self.survival.append(
                len(self._cohort & current) / len(self._cohort))
        self._previous = current
        self.dates.append(fragment.date_text)
        self.resolver_counts.append(fragment.resolver_count)
        self.provider_count_series.append(len(fragment.providers))
        self.invalid_provider_series.append(
            sum(1 for _, _, invalid in fragment.providers if invalid))
        self.provider_pairs_per_round.append(fragment.provider_pairs())
        self.last_fragment = fragment
        self.rounds_folded += 1

    # -- artefacts (byte-identical to the batch path by construction) ----

    def country_growth(self, top_n: int = 10
                       ) -> List[Tuple[str, int, int, Optional[float]]]:
        if self.first_fragment is None or self.last_fragment is None:
            return []
        return rank_country_growth(self.first_fragment.country_counter(),
                                   self.last_fragment.country_counter(),
                                   top_n)

    def table2_text(self) -> str:
        if self.first_fragment is None or self.last_fragment is None:
            return tables.table2_text_from("first scan", "last scan", [])
        return tables.table2_text_from(self.first_fragment.date_text,
                                       self.last_fragment.date_text,
                                       self.country_growth())

    def figure3_series(self, top_providers: int = 6
                       ) -> Tuple[List[str], Dict[str, List[int]]]:
        return figures.figure3_series_from(
            list(self.dates), self.provider_pairs_per_round,
            list(self.resolver_counts), top_providers)

    def figure4_series(self) -> Tuple[List[str], List[int], List[int],
                                      List[Tuple[int, float]]]:
        final_sizes = ([count for _, count, _ in
                        self.last_fragment.providers]
                       if self.last_fragment is not None else [])
        return figures.figure4_series_from(
            list(self.dates), list(self.provider_count_series),
            list(self.invalid_provider_series), final_sizes)

    def resolvers_per_round(self) -> List[Tuple[str, int]]:
        return list(zip(self.dates, self.resolver_counts))


__all__ = [
    "FRAGMENT_WIRE_VERSION",
    "FragmentAccumulator",
    "RoundFragment",
]
