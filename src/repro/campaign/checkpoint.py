"""Append-only campaign checkpoints: kill a run, resume at the next round.

The store is a JSONL file. Line one is a header binding the checkpoint
to its scenario (a canonical digest of the full config, so a resume
against a different world fails loudly instead of silently mixing
rounds). Every later line records one completed round: its
:class:`~repro.campaign.fragment.RoundFragment` in wire form plus a
chained SHA-256 digest over every fragment so far — the digest a
resumed campaign ends with is therefore byte-for-byte the digest an
uninterrupted run produces, which ``BENCH_LONGITUDINAL.json`` gates on.

Writes append one line per round and flush+fsync before returning, so
a kill leaves at worst one truncated trailing line; loading tolerates
exactly that (the interrupted round simply reruns on resume).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import List, Tuple

from repro.campaign.fragment import RoundFragment
from repro.errors import CampaignError

CHECKPOINT_FORMAT = "repro-campaign-checkpoint"
CHECKPOINT_VERSION = 1


def config_digest(config) -> str:
    """Canonical digest of a ScenarioConfig (sorted-key JSON)."""
    payload = json.dumps(dataclasses.asdict(config), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def chain_digest(previous: str, wire) -> str:
    """The running campaign digest after one more fragment.

    Chained like a hash list: H(previous_hex || canonical_json(wire)).
    Any divergence in any earlier round changes every later digest.
    """
    payload = json.dumps(list(wire), separators=(",", ":"))
    return hashlib.sha256(
        (previous + payload).encode("utf-8")).hexdigest()


class CheckpointStore:
    """One campaign's checkpoint file."""

    def __init__(self, path: str):
        self.path = path

    def start(self, config, total_rounds: int) -> None:
        """Begin a fresh checkpoint (truncates any previous one)."""
        header = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "seed": config.seed,
            "config_digest": config_digest(config),
            "rounds": total_rounds,
        }
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def append(self, fragment: RoundFragment, digest: str) -> None:
        """Record one completed round (flushed and fsynced)."""
        line = json.dumps({
            "round": fragment.round_index,
            "digest": digest,
            "fragment": list(fragment.to_wire()),
        }, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load(self, config) -> Tuple[List[RoundFragment], str]:
        """Completed fragments plus the running digest, for resume.

        A missing file means a fresh start (``([], "")``). A header
        written for a different config, a broken digest chain, or
        out-of-order rounds raise :class:`CampaignError`; a truncated
        *trailing* line — the signature of a kill mid-append — is
        dropped silently.
        """
        if not os.path.exists(self.path):
            return [], ""
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            return [], ""
        header = self._parse_header(lines[0], config)
        fragments: List[RoundFragment] = []
        digest = ""
        for position, line in enumerate(lines[1:], start=2):
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                if position == len(lines):
                    break  # torn trailing write; the round reruns
                raise CampaignError(
                    f"{self.path}:{position}: corrupt checkpoint line "
                    "(not valid JSON, and not the trailing line)")
            fragment = RoundFragment.from_wire(entry.get("fragment"))
            if fragment.round_index != entry.get("round"):
                raise CampaignError(
                    f"{self.path}:{position}: round field "
                    f"{entry.get('round')!r} does not match fragment "
                    f"round {fragment.round_index}")
            expected = len(fragments)
            if fragment.round_index != expected:
                raise CampaignError(
                    f"{self.path}:{position}: expected round {expected}, "
                    f"found round {fragment.round_index}")
            digest = chain_digest(digest, fragment.to_wire())
            if digest != entry.get("digest"):
                raise CampaignError(
                    f"{self.path}:{position}: digest chain mismatch — "
                    "the checkpoint was edited or mixes campaigns")
            fragments.append(fragment)
        if len(fragments) > header["rounds"]:
            raise CampaignError(
                f"{self.path}: holds {len(fragments)} rounds but its "
                f"header declares {header['rounds']}")
        return fragments, digest

    def _parse_header(self, line: str, config) -> dict:
        try:
            header = json.loads(line)
        except json.JSONDecodeError:
            raise CampaignError(
                f"{self.path}: corrupt checkpoint header")
        if header.get("format") != CHECKPOINT_FORMAT:
            raise CampaignError(
                f"{self.path}: not a campaign checkpoint "
                f"(format {header.get('format')!r})")
        if header.get("version") != CHECKPOINT_VERSION:
            raise CampaignError(
                f"{self.path}: checkpoint version "
                f"{header.get('version')!r} is not readable by this "
                f"build (version {CHECKPOINT_VERSION})")
        if header.get("config_digest") != config_digest(config):
            raise CampaignError(
                f"{self.path}: checkpoint was written for a different "
                "scenario config; refusing to mix campaigns")
        return header


__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CheckpointStore",
    "chain_digest",
    "config_digest",
]
