"""The longitudinal campaign engine: a managed round queue.

RIPE-Atlas-style scheduling: every scan round is a queued job. The
engine pops jobs in order, executes each through the existing
:class:`~repro.core.scan.campaign.ScanCampaign` machinery (serial, or
fanned out over the persistent worker pool via a
:class:`~repro.core.parallel.ParallelConfig`), reduces the round to a
:class:`~repro.campaign.fragment.RoundFragment`, folds it into the
streaming :class:`~repro.campaign.fragment.FragmentAccumulator`,
checkpoints it, and releases the round's world caches before the next
job starts. Memory therefore stays flat in the number of rounds — the
property ``benchmarks/bench_longitudinal.py`` gates — and a killed
campaign resumes at the last completed round with byte-identical final
artefacts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from repro.campaign.checkpoint import CheckpointStore, chain_digest
from repro.campaign.fragment import FragmentAccumulator, RoundFragment
from repro.core.parallel import ParallelConfig
from repro.core.scan.campaign import ScanCampaign
from repro.core.scan.doh_scan import DohScanRecord
from repro.errors import CampaignError
from repro.telemetry import get_registry, get_tracer
from repro.world.scenario import Scenario


@dataclass
class RoundJob:
    """One queued round and where it is in its lifecycle."""

    round_index: int
    #: "queued" -> "running" -> "done"; rounds replayed from a
    #: checkpoint enter (and stay) at "restored".
    status: str = "queued"


@dataclass
class CampaignSummary:
    """What a campaign run produced (streaming state, never raw rounds)."""

    accumulator: FragmentAccumulator
    #: Chained SHA-256 over every round fragment, in order — equal for
    #: an uninterrupted run and a kill/resume of the same campaign.
    digest: str
    total_rounds: int
    restored_rounds: int
    executed_rounds: int
    #: False when the run stopped early (``stop_after_round``).
    completed: bool
    doh_records: List[DohScanRecord] = field(default_factory=list)

    @property
    def rounds_folded(self) -> int:
        return self.accumulator.rounds_folded

    def working_doh(self) -> List[DohScanRecord]:
        return [record for record in self.doh_records if record.is_doh]

    def table2_text(self) -> str:
        return self.accumulator.table2_text()

    def manifest_block(self) -> dict:
        """The run-manifest ``campaign`` section."""
        return {
            "rounds": self.total_rounds,
            "restored_rounds": self.restored_rounds,
            "executed_rounds": self.executed_rounds,
            "completed": self.completed,
            "digest": self.digest,
        }


class CampaignEngine:
    """Drives N rounds through a managed queue with checkpoint/resume."""

    def __init__(self, scenario: Scenario,
                 parallel: Optional[ParallelConfig] = None,
                 checkpoint_path: Optional[str] = None):
        self.scenario = scenario
        self.parallel = parallel
        self.campaign = ScanCampaign(scenario, parallel=parallel)
        self.store = (CheckpointStore(checkpoint_path)
                      if checkpoint_path else None)
        #: The last run's queue, for inspection (tests, progress UIs).
        self.jobs: List[RoundJob] = []

    def run(self, rounds: Optional[int] = None, *, resume: bool = False,
            stop_after_round: Optional[int] = None,
            include_doh: bool = True) -> CampaignSummary:
        """Run (or resume) the campaign through the round queue.

        ``resume=True`` replays completed rounds from the checkpoint
        into the accumulator and executes only the remainder;
        ``stop_after_round=k`` exits the queue after round ``k``
        completes (the benchmark's kill simulation). DoH discovery runs
        once, only when the queue drains.
        """
        total = (self.scenario.config.scan_rounds if rounds is None
                 else rounds)
        if total > self.scenario.config.scan_rounds:
            raise CampaignError(
                f"campaign of {total} rounds exceeds the scenario's "
                f"{self.scenario.config.scan_rounds}-round timeline")
        restored, digest = self._restore(resume, total)
        if len(restored) > total:
            raise CampaignError(
                f"checkpoint holds {len(restored)} rounds but this run "
                f"asks for only {total}")
        accumulator = FragmentAccumulator()
        for fragment in restored:
            accumulator.fold(fragment)
        queue: Deque[RoundJob] = deque(
            RoundJob(index) for index in range(len(restored), total))
        self.jobs = ([RoundJob(f.round_index, "restored")
                      for f in restored] + list(queue))
        registry = get_registry()
        if restored:
            registry.inc("campaign.rounds.restored", len(restored))
        if self.parallel is not None:
            # Same contract as ScanCampaign.run: a campaign opens a
            # fresh adaptive-decision log so same-seed reruns record
            # the same decisions, not an accumulating history.
            self.parallel.decisions.clear()
        start = self.scenario.scan_dates()[0]
        executed = 0
        stopped_early = False
        with get_tracer().span("campaign.queue", clock=lambda: start,
                               rounds=total, restored=len(restored)):
            while queue:
                job = queue.popleft()
                job.status = "running"
                result = self.campaign.run_round(job.round_index)
                fragment = RoundFragment.from_round(result)
                del result  # the fragment is all later rounds may see
                digest = chain_digest(digest, fragment.to_wire())
                accumulator.fold(fragment)
                if self.store is not None:
                    self.store.append(fragment, digest)
                # Flat memory: evict every earlier round's cached
                # world. The current round is kept so a final-round
                # DoH pass reuses the already-built network.
                self.scenario.release_rounds_before(job.round_index)
                job.status = "done"
                executed += 1
                registry.inc("campaign.rounds.executed")
                registry.set_gauge("campaign.queue.depth", len(queue))
                if (stop_after_round is not None
                        and job.round_index >= stop_after_round):
                    stopped_early = True
                    break
        completed = not stopped_early and accumulator.rounds_folded == total
        doh_records: List[DohScanRecord] = []
        if completed and include_doh and total > 0:
            doh_records = self.campaign.run_doh_discovery()
        return CampaignSummary(
            accumulator=accumulator,
            digest=digest,
            total_rounds=total,
            restored_rounds=len(restored),
            executed_rounds=executed,
            completed=completed,
            doh_records=doh_records,
        )

    def _restore(self, resume: bool,
                 total: int) -> Tuple[List[RoundFragment], str]:
        if not resume:
            if self.store is not None:
                self.store.start(self.scenario.config, total)
            return [], ""
        if self.store is None:
            raise CampaignError(
                "resume requested but the engine has no checkpoint path")
        return self.store.load(self.scenario.config)


__all__ = [
    "CampaignEngine",
    "CampaignSummary",
    "RoundJob",
]
