"""World scenario: the calibrated ground truth the platform measures.

This package builds the simulated Internet the measurement pipeline runs
against — DoT/DoH providers (large anycast operators plus the long tail
of small and misconfigured ones), censored and intercepted client
populations, and the churn between scan rounds — with every knob
calibrated to the numbers the paper reports (see DESIGN.md §5).
"""

from repro.world.providers import (
    ProviderSpec,
    ResolverAddressSpec,
    build_provider_population,
)
from repro.world.population import VantagePoint, build_proxyrack, build_zhima
from repro.world.scenario import Scenario, ScenarioConfig, build_scenario

__all__ = [
    "ProviderSpec",
    "ResolverAddressSpec",
    "build_provider_population",
    "VantagePoint",
    "build_proxyrack",
    "build_zhima",
    "Scenario",
    "ScenarioConfig",
    "build_scenario",
]
