"""Scenario assembly: the whole simulated world, calibrated to the paper.

:func:`build_scenario` produces a :class:`Scenario` bundling

* the provider ground truth and per-scan-round networks (Section 3),
* the trusted/untrusted certificate infrastructure,
* the DNS universe with the measurement platform's own probe zone,
* the vantage-point populations (Section 4),
* the URL dataset used for DoH discovery,
* handles the usage-study dataset generators attach to (Section 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dnswire.names import DnsName
from repro.dnswire.records import ResourceRecord
from repro.dnswire.zone import Zone
from repro.errors import ScenarioError
from repro.netsim.clock import DAY_SECONDS, SimClock, format_date, parse_date
from repro.netsim.geo import GeoPoint, country
from repro.netsim.host import Host, TlsConfig
from repro.netsim.ipv4 import Netblock
from repro.netsim.middlebox import Censor, RuleSet, Verdict
from repro.netsim.network import Network
from repro.netsim.procgen import (
    ExplicitSegment,
    ProceduralWorld,
    RangeSegment,
    RestrictedWorld,
)
from repro.netsim.rand import SeededRng, keyed_offset
from repro.resolvers.backends import (
    FixedAnswerBackend,
    FlakyForwardingBackend,
    RecursiveBackend,
    ResolverBackend,
)
from repro.resolvers.frontends import (
    Do53TcpService,
    Do53UdpService,
    DohService,
    DotService,
    WebpageService,
)
from repro.resolvers.universe import DnsUniverse
from repro.tlssim.certs import (
    CaStore,
    Certificate,
    CertificateAuthority,
    make_chain,
    self_signed,
)
from repro.world.population import (
    AtlasProbe,
    VantagePoint,
    build_atlas_probes,
    build_proxyrack,
    build_zhima,
    iter_proxyrack,
    iter_zhima,
)
from repro.world.providers import (
    CERT_BAD_CHAIN,
    CERT_EXPIRED,
    CERT_EXPIRED_2018,
    CERT_FORTIGATE,
    CERT_SELF_SIGNED,
    CERT_VALID,
    ProviderSpec,
    ResolverAddressSpec,
    build_provider_population,
)

#: Anycast points of presence used by the large operators.
GLOBAL_POPS = tuple(country(code).point for code in
                    ("US", "DE", "SG", "BR", "AU", "JP", "ZA", "IN",
                     "GB", "HK", "FR", "SE"))

PROBE_ZONE = "probe.dnsmeasure.example."
PROBE_ANSWER = "198.51.100.53"
SELF_BUILT_IP = "188.166.200.77"
SELF_BUILT_HOSTNAME = "dns.selfbuilt.example"

#: Blocked-in-China Google service addresses (dns.google.com resolves
#: here; "the addresses also carry other Google services, therefore are
#: blocked from Chinese users").
GOOGLE_DOH_IP = "216.58.192.10"
GOOGLE_DO53_IPS = ("8.8.8.8", "8.8.4.4")

#: Country mix of the port-853-open non-DoT background population.
BACKGROUND_COUNTRY_CODES = ("US", "CN", "BR", "RU", "IN", "DE", "KR",
                            "VN", "TR", "ID", "MX", "TH")

#: Address space carved out for the procedurally-scaled background
#: (``world_scale`` > 1): 16.7M addresses, enough for 10^7 sweeps.
SCALED_BACKGROUND_BLOCK = Netblock.from_text("11.0.0.0/8")


def background_sample_address(index: int) -> str:
    """The materialised background sample's address for one index."""
    return (f"203.{(index // 250) % 200}.{(index // 250) // 200}."
            f"{index % 250 + 1}")


def dnscrypt_provider_key(provider_cn: str):
    """The DNSCrypt key a provider publishes, derived purely from its CN.

    A pure string derivation (no rng, no issuance counter) keeps DoQ- and
    DNSCrypt-flagged worlds byte-identical to unflagged ones everywhere
    else, and makes eager/lazy/partial builds agree on the key without
    any shared state.
    """
    from repro.doe.dnscrypt import ProviderKey
    return ProviderKey(f"2.dnscrypt-cert.{provider_cn}",
                       f"pk-{provider_cn}")


@dataclass
class ScenarioConfig:
    """Scenario knobs; defaults reproduce the paper's scale."""

    seed: int = 2019
    #: Scan campaign: Feb 1 to May 1 2019, every 10 days (Section 3.1).
    first_scan_date: str = "2019-02-01"
    scan_interval_days: int = 10
    scan_rounds: int = 10
    #: Vantage populations (Table 3). The paper had 29,622 / 85,112 /
    #: 6,655; ``vantage_scale`` shrinks all three together.
    proxyrack_endpoints: int = 29_622
    zhima_endpoints: int = 85_112
    atlas_probes: int = 6_655
    vantage_scale: float = 1.0
    #: Hosts with port 853 open that are not DoT (Finding 1.1 reports
    #: millions); only a sample is materialised for probing.
    background_open853_first: int = 3_560_000
    background_open853_last: int = 2_300_000
    background_sample_size: int = 1_500
    #: URL dataset size ("billions" in the paper; scaled down, the DoH
    #: discovery logic only depends on the candidates within).
    url_dataset_noise: int = 120_000
    intercepted_clients: int = 17
    hijacked_routers: int = 12
    #: Fault-injection plan spec (see :mod:`repro.netsim.faults`); the
    #: empty string disables injection entirely.
    fault_plan: str = ""
    #: Retry attempts for scan probes / stub lookups; None keeps each
    #: component's historical default (1 for probes, 5 for reachability).
    retry_attempts: Optional[int] = None
    #: First backoff delay between retries, seconds (0 = immediate retry,
    #: the historical behaviour).
    retry_backoff_s: float = 0.0
    #: "eager" materialises every host at network-build time (the
    #: historical behaviour); "lazy" backs the network with a
    #: procedural world whose hosts are derived on first touch.
    world_mode: str = "eager"
    #: Multiplier on the background address space. Above 1.0 a
    #: procedural dark-space segment is appended after the materialised
    #: sample; sweeps walk it in O(open hosts), so 10^6–10^7-address
    #: campaigns run in flat memory.
    world_scale: float = 1.0
    #: One port-853-open host per this many scaled-background
    #: addresses (tiny strides make differential tests cheap).
    background_open_stride: int = 256
    #: Bound on each lazily-backed network's materialised-host LRU.
    host_lru_size: int = 4096
    #: Longitudinal dynamics (``repro.campaign``): per-round probability
    #: that an *unadvertised* resolver address sits a round out
    #: (provider churn). Advertised addresses never churn — the public
    #: anchors (1.1.1.1 and friends) stay measurable all campaign.
    #: 0.0 reproduces the historical static population byte-for-byte.
    churn_rate: float = 0.0
    #: Reissue provider certificates every N rounds (0 disables). Each
    #: epoch mints fresh leaf chains valid for the epoch plus a short
    #: grace period; a deterministic minority of providers lag an epoch
    #: behind, so their certificates expire partway through an epoch —
    #: expiry crossing round boundaries, not run boundaries.
    cert_rotation_rounds: int = 0
    #: Adoption growth curve shaping the open-port plan over the
    #: campaign: "" (none, historical), "linear" or "logistic".
    adoption_curve: str = ""

    def scaled(self, value: int) -> int:
        return max(1, round(value * self.vantage_scale))

    def background_space(self) -> int:
        """Total background addresses (sample + procedural extension)."""
        return max(self.background_sample_size,
                   round(self.background_sample_size * self.world_scale))

    def background_extra(self) -> int:
        """Procedural background addresses beyond the explicit sample."""
        return self.background_space() - self.background_sample_size

    @classmethod
    def small(cls, seed: int = 2019) -> "ScenarioConfig":
        """A test-sized configuration (~1% of the vantage population)."""
        return cls(seed=seed, vantage_scale=0.02,
                   background_sample_size=120, url_dataset_noise=3_000,
                   intercepted_clients=5, hijacked_routers=3)


@dataclass
class ResolverRecord:
    """Ground truth of one resolver address (for result validation)."""

    provider: ProviderSpec
    spec: ResolverAddressSpec
    tls_config: Optional[TlsConfig]


class RoundLayout:
    """One scan round's address plan, built once and shared by every
    network construction (eager, lazy, full or shard-restricted).

    ``addresses`` preserves the exact insertion order of the historical
    eager build; ``builders`` maps each address to the ``(kind,
    payload)`` its deriver needs; ``tcp_ports``/``udp_ports`` record the
    open-port tuples so sweeps can answer port questions without
    building hosts. ``scaled`` is the procedural dark-space segment
    appended after the named world when ``world_scale`` > 1.
    """

    __slots__ = ("addresses", "builders", "tcp_ports", "udp_ports",
                 "scaled")

    def __init__(self) -> None:
        self.addresses: List[str] = []
        self.builders: Dict[str, Tuple[str, object]] = {}
        self.tcp_ports: Dict[str, Tuple[int, ...]] = {}
        self.udp_ports: Dict[str, Tuple[int, ...]] = {}
        self.scaled: Optional[RangeSegment] = None

    def add(self, address: str, kind: str, payload,
            ports: Tuple[int, ...],
            udp_ports: Tuple[int, ...] = ()) -> bool:
        """Claim an address; returns False when already claimed
        (mirroring the eager build's first-wins ``host_at`` dedupe)."""
        if address in self.builders:
            return False
        self.addresses.append(address)
        self.builders[address] = (kind, payload)
        self.tcp_ports[address] = ports
        self.udp_ports[address] = udp_ports
        return True


class Scenario:
    """The fully-built world, plus lazy vantage populations."""

    def __init__(self, config: ScenarioConfig):
        if config.world_mode not in ("eager", "lazy"):
            raise ScenarioError(
                f"unknown world_mode {config.world_mode!r} "
                "(expected 'eager' or 'lazy')")
        if config.world_scale < 1.0:
            raise ScenarioError("world_scale must be >= 1.0")
        if not 0.0 <= config.churn_rate < 1.0:
            raise ScenarioError("churn_rate must be in [0.0, 1.0)")
        if config.cert_rotation_rounds < 0:
            raise ScenarioError("cert_rotation_rounds must be >= 0")
        if config.adoption_curve not in ("", "linear", "logistic"):
            raise ScenarioError(
                f"unknown adoption_curve {config.adoption_curve!r} "
                "(expected '', 'linear' or 'logistic')")
        self.config = config
        self.rng = SeededRng(config.seed, "scenario")
        self.universe = DnsUniverse()
        self.trust_store = CaStore()
        self.trusted_ca = CertificateAuthority.root("ISRG Root X1")
        self.secondary_ca = CertificateAuthority.root("DigiCert Global Root")
        self.trust_store.trust(self.trusted_ca)
        self.trust_store.trust(self.secondary_ca)
        #: An untrusted CA whose certificates produce BROKEN_CHAIN when a
        #: wrong intermediate is stapled below the leaf.
        self._orphan_ca = CertificateAuthority.root(
            "Orphaned Issuing CA", trusted=False)
        self.providers: List[ProviderSpec] = []
        self.resolver_records: Dict[str, ResolverRecord] = {}
        #: Resolver TLS configs keyed by (address, rotation epoch);
        #: without cert rotation every address lives at epoch 0.
        self._tls_configs: Dict[Tuple[str, int], TlsConfig] = {}
        #: Memoised leaf chains for hosts outside ``_tls_config_for``
        #: (DoH fronts, the self-built resolver, atlas-local DoT).
        #: Rebuilding a round's network from a cached scenario — which
        #: persistent pool workers do every dispatch — must not
        #: re-issue certificates: issuance consumes the process-global
        #: serial counter and costs most of a rebuild.
        self._chain_memo: Dict[str, Tuple[Certificate, ...]] = {}
        self._networks: Dict[int, Network] = {}
        #: Per-round address plans (see :class:`RoundLayout`); built
        #: once, then shared by every eager/lazy/shard network build.
        self._layouts: Dict[int, RoundLayout] = {}
        #: Read-only network cache for sweep shards (see
        #: :meth:`pristine_network_for_round`). Separate from
        #: ``_networks`` so the mutable-use cache can never hand a
        #: sweep a clock-advanced world or vice versa.
        self._pristine_networks: Dict[int, Network] = {}
        self._proxyrack: Optional[List[VantagePoint]] = None
        self._zhima: Optional[List[VantagePoint]] = None
        self._atlas: Optional[Tuple[List[AtlasProbe], List[str]]] = None
        self._url_dataset = None
        self._fault_plan = None
        self.probe_origin = DnsName.from_text(PROBE_ZONE)

    # -- campaign timeline ---------------------------------------------------

    def scan_dates(self) -> List[float]:
        start = parse_date(self.config.first_scan_date)
        step = self.config.scan_interval_days * DAY_SECONDS
        return [start + index * step
                for index in range(self.config.scan_rounds)]

    def final_round(self) -> int:
        return self.config.scan_rounds - 1

    # -- world building ---------------------------------------------------------

    def network_for_round(self, round_index: int) -> Network:
        """The resolver world as it exists at one scan round (cached).

        The cached network is *mutable* (clocks advance, backends draw
        rng, caches fill). Shard workers reusing a cached scenario must
        not touch it — they build with :meth:`fresh_network_for_round`
        (mutating measurements) or :meth:`pristine_network_for_round`
        (read-only sweeps) instead.
        """
        if round_index not in self._networks:
            self._networks[round_index] = self._build_network(round_index)
        return self._networks[round_index]

    def fresh_network_for_round(self, round_index: int,
                                only_addresses=None) -> Network:
        """An uncached network build for one round.

        ``only_addresses`` (a set of address strings) restricts the
        build to hosts at those addresses: every included host is
        constructed from its own stateless rng fork, so a partial world
        behaves identically to the same addresses inside a full build.
        Used by shard workers, whose cached scenarios outlive any one
        dispatch — handing out the mutable cached network would let a
        later shard observe an earlier shard's clock advances.
        """
        return self._build_network(round_index,
                                   only_addresses=only_addresses)

    def pristine_network_for_round(self, round_index: int) -> Network:
        """A cached network reserved for *read-only* use (ZMap sweeps).

        Sweeps only inspect service bindings and draw from their own
        probe rng, so shards can share one pristine instance per round
        instead of rebuilding the full world per sweep shard. Kept in a
        cache separate from :meth:`network_for_round` so mutating
        callers can never warm (or dirty) this one.
        """
        if round_index not in self._pristine_networks:
            self._pristine_networks[round_index] = (
                self._build_network(round_index))
        return self._pristine_networks[round_index]

    def doh_addresses(self) -> frozenset:
        """Every DoH front address across providers (partial builds)."""
        addresses = set()
        for provider in self.providers:
            if provider.doh_template and provider.doh_hosts:
                addresses.update(provider.doh_hosts.values())
        return frozenset(addresses)

    def doq_addresses(self, round_index: Optional[int] = None) -> frozenset:
        """Ground-truth DoQ (UDP 784) addresses at one round."""
        return self._udp_service_addresses(784, round_index)

    def dnscrypt_addresses(self,
                           round_index: Optional[int] = None) -> frozenset:
        """Ground-truth DNSCrypt (UDP 443) addresses at one round."""
        return self._udp_service_addresses(443, round_index)

    def _udp_service_addresses(self, port: int,
                               round_index: Optional[int]) -> frozenset:
        if round_index is None:
            round_index = self.final_round()
        layout = self.round_layout(round_index)
        return frozenset(address for address, ports
                         in layout.udp_ports.items() if port in ports)

    def client_network(self) -> Network:
        """The world the client-side studies run against (final round)."""
        return self.network_for_round(self.final_round())

    def background_open853(self, round_index: int) -> int:
        """How many non-DoT hosts have port 853 open at a round."""
        config = self.config
        if config.scan_rounds <= 1:
            base = config.background_open853_last
        else:
            fraction = round_index / (config.scan_rounds - 1)
            base = (config.background_open853_first
                    + (config.background_open853_last
                       - config.background_open853_first) * fraction)
        return round(base * self.adoption_factor(round_index))

    # -- longitudinal dynamics (pure functions of seed and round) -------------

    def adoption_factor(self, round_index: int) -> float:
        """Multiplier the adoption growth curve applies at one round.

        Scales the open-port plan — the background 853 estimate and the
        scaled dark-space open density — from 1.0 at the first round
        towards 2.0 at the last. The empty curve returns exactly 1.0
        everywhere, keeping historical worlds byte-identical.
        """
        curve = self.config.adoption_curve
        if not curve:
            return 1.0
        span = max(1, self.config.scan_rounds - 1)
        x = min(1.0, round_index / span)
        if curve == "linear":
            return 1.0 + x
        # Logistic: slow start, steep middle, saturating towards 2.0 —
        # the adoption shape longitudinal DoH studies report.
        return 1.0 + 1.0 / (1.0 + math.exp(-8.0 * (x - 0.5)))

    def _churned_out(self, spec: ResolverAddressSpec,
                     round_index: int) -> bool:
        """Whether provider churn keeps one resolver out of this round.

        A pure hash draw over (seed, address, round): every build
        order, materialisation strategy and shard plan agrees on the
        round's population. Advertised addresses never churn.
        """
        rate = self.config.churn_rate
        if rate <= 0.0 or spec.advertised:
            return False
        draw = keyed_offset(f"{self.config.seed}:churn:{spec.address}",
                            round_index, 1_000_000)
        return draw < int(rate * 1_000_000)

    def rotation_epoch(self, round_index: int) -> int:
        """Which certificate-rotation epoch one round falls in."""
        period = self.config.cert_rotation_rounds
        return round_index // period if period > 0 else 0

    def _rotation_effective_epoch(self, address: str, epoch: int) -> int:
        """The epoch whose certificate an address actually presents.

        A deterministic ~20% of addresses lag each epoch and keep
        presenting the previous epoch's chain; consecutive lags walk
        further back, so some chains are observed well past their
        window — the expired-mid-campaign population of Finding 1.2.
        """
        while epoch > 0 and keyed_offset(
                f"{self.config.seed}:rot-lag:{address}", epoch, 100) < 20:
            epoch -= 1
        return epoch

    def _rotation_window(self, epoch: int) -> Tuple[str, str]:
        """The validity window of one rotation epoch's certificates.

        Valid from a month before the epoch starts until half an epoch
        of grace after it ends. The grace is shorter than a full epoch,
        so a chain presented one epoch late expires partway through the
        current epoch — across a *round* boundary, never neatly at an
        epoch edge.
        """
        period = self.config.cert_rotation_rounds
        interval = self.config.scan_interval_days * DAY_SECONDS
        span = period * interval
        start = (parse_date(self.config.first_scan_date)
                 + epoch * span)
        grace = span // 2
        return (format_date(start - 30 * DAY_SECONDS),
                format_date(start + span + grace))

    def release_rounds_before(self, round_index: int) -> int:
        """Evict per-round caches for rounds before ``round_index``.

        Longitudinal campaigns visit each round once, in order;
        dropping finished rounds' networks, layouts and rotated-out TLS
        configs keeps a 100-round run's memory flat. Releasing is pure
        cache eviction — a released round rebuilds deterministically
        (layout side effects are idempotent, host derivation is pure) —
        so calling this can never change a result, only rebuild cost.
        Returns the number of evicted entries.
        """
        released = 0
        for cache in (self._networks, self._pristine_networks,
                      self._layouts):
            for key in [k for k in cache if k < round_index]:
                del cache[key]
                released += 1
        if self.config.cert_rotation_rounds > 0 and round_index > 0:
            # Keep the previous epoch too: laggards reach one back.
            floor = self.rotation_epoch(round_index - 1) - 1
            for key in [k for k in self._tls_configs if k[1] < floor]:
                del self._tls_configs[key]
                released += 1
        # The authoritative query logs grow by every probe of every
        # round; nothing reads them across rounds, so empty them too.
        released += self.universe.release_logs()
        return released

    def round_layout(self, round_index: int) -> RoundLayout:
        """The address plan for one round (built once, memoised).

        Building the layout performs, exactly once and in the
        historical eager-build order, every side effect host
        construction used to perform: resolver ground-truth
        registration, certificate issuance (memoised chains) and DNS
        universe entries. Host *derivation* afterwards is pure — any
        address, in any order, any number of times.
        """
        layout = self._layouts.get(round_index)
        if layout is None:
            layout = self._build_layout(round_index)
            self._layouts[round_index] = layout
        return layout

    def _build_layout(self, round_index: int) -> RoundLayout:
        from repro.httpsim.uri import UriTemplate
        layout = RoundLayout()
        for provider in self.providers:
            for spec in provider.addresses_in_round(round_index):
                if self._churned_out(spec, round_index):
                    continue
                udp = [53]
                if provider.doq and spec.advertised:
                    udp.append(784)
                if provider.dnscrypt and spec.advertised:
                    udp.append(443)
                if not layout.add(spec.address, "resolver",
                                  (provider, spec), (53, 80, 853),
                                  udp_ports=tuple(sorted(udp))):
                    raise ScenarioError(
                        f"duplicate host address {spec.address}")
                tls = self._tls_config_for(provider, spec, round_index)
                self.resolver_records[spec.address] = ResolverRecord(
                    provider, spec, tls)
            if provider.doh_template and provider.doh_hosts:
                path = UriTemplate(provider.doh_template).path
                for hostname, address in provider.doh_hosts.items():
                    if not layout.add(address, "doh",
                                      (provider, hostname, path),
                                      (80, 443)):
                        continue
                    self._memoised_chain(
                        f"doh/{hostname}/{address}",
                        lambda hostname=hostname: make_chain(
                            self.trusted_ca, hostname,
                            "2018-09-01", "2019-09-01",
                            san=(hostname,)))
                    self.universe.host_a(hostname, address)
        for address in GOOGLE_DO53_IPS:
            layout.add(address, "google", None, (53, 80),
                       udp_ports=(53,))
        if layout.add(SELF_BUILT_IP, "self", None, (53, 443, 853),
                      udp_ports=(53, 443, 784)):
            self._memoised_chain(
                "self-built",
                lambda: make_chain(self.trusted_ca, SELF_BUILT_HOSTNAME,
                                   "2018-11-01", "2019-11-01",
                                   san=(SELF_BUILT_HOSTNAME,)))
            self.universe.host_a(SELF_BUILT_HOSTNAME, SELF_BUILT_IP)
        sample_rng = self.rng.fork(f"background-{round_index}")
        for index in range(self.config.background_sample_size):
            # The country draw happens for every index — even ones a
            # later partial build skips — so each host's code depends
            # only on its index, never on which hosts were requested.
            code = sample_rng.choice(BACKGROUND_COUNTRY_CODES)
            layout.add(background_sample_address(index), "background",
                       code, (853,))
        probes, dot_capable = self.atlas()
        capable = set(dot_capable)
        for probe in probes:
            if probe.uses_public_resolver:
                continue
            is_capable = probe.local_resolver_ip in capable
            if not layout.add(probe.local_resolver_ip, "atlas",
                              (probe, is_capable),
                              (53, 853) if is_capable else (53,),
                              udp_ports=(53,)):
                continue
            if is_capable:
                isp_name = (f"dns.isp-{probe.env.country_code.lower()}"
                            ".example")
                self._memoised_chain(
                    f"atlas/{probe.local_resolver_ip}",
                    lambda isp_name=isp_name: make_chain(
                        self.trusted_ca, isp_name,
                        "2018-10-01", "2019-10-01"))
        extra = self.config.background_extra()
        if extra > 0:
            # The adoption curve densifies the procedural open-port
            # plan: a factor of 2.0 halves the stride, doubling the
            # open hosts the dark-space segment yields at that round.
            stride = self.config.background_open_stride
            factor = self.adoption_factor(round_index)
            if factor != 1.0:
                stride = max(1, round(stride / factor))
            layout.scaled = RangeSegment(
                f"bg-scale-{round_index}", extra,
                SCALED_BACKGROUND_BLOCK, 853, stride,
                f"{self.config.seed}:bg-open-{round_index}")
        return layout

    def _world_for_round(self, round_index: int,
                         layout: RoundLayout) -> ProceduralWorld:
        segments = [ExplicitSegment(f"named-{round_index}",
                                    layout.addresses, layout.tcp_ports,
                                    udp_ports=layout.udp_ports)]
        if layout.scaled is not None:
            segments.append(layout.scaled)
        return ProceduralWorld(
            segments,
            lambda address: self._derive_address(round_index, address))

    def _derive_address(self, round_index: int,
                        address: str) -> Optional[Host]:
        """Build the host at one address — pure given a built layout."""
        layout = self.round_layout(round_index)
        entry = layout.builders.get(address)
        if entry is not None:
            kind, payload = entry
            if kind == "resolver":
                provider, spec = payload
                return self._make_resolver_host(provider, spec,
                                                round_index)
            if kind == "doh":
                provider, hostname, path = payload
                return self._derive_doh_host(address, provider,
                                             hostname, path)
            if kind == "google":
                return self._derive_google_host(address)
            if kind == "self":
                return self._derive_self_built()
            if kind == "background":
                return self._derive_background_host(address, payload)
            if kind == "atlas":
                probe, is_capable = payload
                return self._derive_atlas_host(probe, is_capable)
            raise ScenarioError(f"unknown builder kind {kind!r}")
        if layout.scaled is not None:
            index = layout.scaled.index_of(address)
            if index is not None and layout.scaled.is_open(index):
                return self._derive_scaled_host(round_index, index,
                                                address)
        return None

    def _build_network(self, round_index: int,
                       only_addresses=None) -> Network:
        dates = self.scan_dates()
        clock = SimClock(dates[round_index])
        layout = self.round_layout(round_index)
        if self.config.world_mode == "lazy":
            world = self._world_for_round(round_index, layout)
            if only_addresses is not None:
                world = RestrictedWorld(world, frozenset(only_addresses))
            network = Network(clock=clock, world=world,
                              host_cache_size=self.config.host_lru_size)
        else:
            network = Network(clock=clock)
            for address in layout.addresses:
                if (only_addresses is not None
                        and address not in only_addresses):
                    continue
                host = self._derive_address(round_index, address)
                assert host is not None
                network.add_host(host)
            if layout.scaled is not None:
                # Eager mode materialises only the *open* scaled hosts;
                # dark space exists solely as procedural positions, so
                # eager sweeps at world_scale > 1 probe fewer addresses
                # than lazy ones (tables are unaffected — openness and
                # every derived host still match bit-for-bit).
                for index, address in layout.scaled.open_items():
                    if (only_addresses is not None
                            and address not in only_addresses):
                        continue
                    network.add_host(self._derive_scaled_host(
                        round_index, index, address))
        self._add_censorship(network)
        self._install_faults(network, round_index)
        return network

    # -- fault injection & retry -----------------------------------------------

    def fault_plan_obj(self):
        """The parsed :class:`FaultPlan` behind ``config.fault_plan``."""
        from repro.netsim.faults import FaultPlan
        if self._fault_plan is None:
            self._fault_plan = FaultPlan.parse(self.config.fault_plan)
        return self._fault_plan

    def _install_faults(self, network: Network, round_index: int) -> None:
        plan = self.fault_plan_obj()
        if plan.is_empty:
            return
        from repro.netsim.faults import FaultInjector
        # fork() is stateless, so deriving the per-round stream here
        # cannot perturb any other subsystem's randomness.
        network.install_fault_injector(FaultInjector(
            plan, self.rng.fork(f"faults-{round_index}")))

    def retry_policy(self, default_attempts: int = 1, op: str = "op"):
        """The scenario-wide retry policy for one pipeline component.

        ``config.retry_attempts``/``config.retry_backoff_s`` override the
        component's historical default when set; with the defaults the
        returned policy reproduces pre-fault-injection behaviour exactly
        (immediate retries, no backoff, no extra randomness).
        """
        from repro.core.retry import RetryPolicy
        attempts = (self.config.retry_attempts
                    if self.config.retry_attempts is not None
                    else default_attempts)
        return RetryPolicy(attempts=max(1, attempts),
                           backoff_base_s=self.config.retry_backoff_s,
                           op=op)

    def _add_censorship(self, network: Network) -> None:
        """Country-level blocking (Finding 2.2).

        The GFW blocks the address block carrying Google DoH (it also
        carries other Google services), on every port, for clients in
        China. 8.8.8.8 itself is left reachable, matching Table 4.
        """
        network.add_country_policy("CN", Censor(
            "gfw", RuleSet(blocked_ips={GOOGLE_DOH_IP}),
            action=Verdict.DROP))

    # -- host derivers (pure per-address recipes) --------------------------------

    def _make_resolver_host(self, provider: ProviderSpec,
                            spec: ResolverAddressSpec,
                            round_index: int = 0) -> Host:
        host_rng = self.rng.fork(f"host-{spec.address}")
        entry = country(spec.country)
        point = GeoPoint(entry.point.lat + host_rng.uniform(-2, 2),
                         entry.point.lon + host_rng.uniform(-2, 2))
        pops = GLOBAL_POPS if provider.anycast else (point,)
        host = Host(address=spec.address, country_code=spec.country,
                    point=point, pops=pops,
                    processing_ms=host_rng.uniform(0.8, 2.5),
                    operator=provider.name)
        host.tags.add("dot-resolver")
        if provider.kind == "inspection":
            host.tags.add("tls-inspection")
        if not spec.advertised:
            host.tags.add("unadvertised")
        tls = self._tls_config_for(provider, spec, round_index)
        backend = self._backend_for(provider, host_rng)
        host.bind("tcp", 853, DotService(backend, tls))
        host.bind("udp", 53, Do53UdpService(backend))
        host.bind("tcp", 53, Do53TcpService(backend))
        # DoQ/DNSCrypt frontends are derived purely from the provider
        # flags — no rng draws, so flagged and unflagged builds walk
        # identical random streams.
        if provider.doq and spec.advertised:
            from repro.doe.doq import DOQ_PORT, DoqService
            host.bind("udp", DOQ_PORT, DoqService(backend, tls))
            host.tags.add("doq-resolver")
        if provider.dnscrypt and spec.advertised:
            from repro.doe.dnscrypt import DNSCRYPT_PORT, DnsCryptService
            host.bind("udp", DNSCRYPT_PORT, DnsCryptService(
                backend, dnscrypt_provider_key(provider.cert_cn)))
            host.tags.add("dnscrypt-resolver")
        webpage = f"<title>{provider.name} DNS</title>"
        host.bind("tcp", 80, WebpageService(webpage))
        host.webpage = webpage
        host.ptr_name = (f"resolver-{spec.address.replace('.', '-')}."
                         f"{provider.cert_cn}")
        return host

    def _derive_doh_host(self, address: str, provider: ProviderSpec,
                         hostname: str, path: str) -> Host:
        host_rng = self.rng.fork(f"doh-{address}")
        home = "US" if provider.anycast else "DE"
        entry = country(home)
        host = Host(address=address, country_code=home,
                    point=entry.point,
                    pops=GLOBAL_POPS if provider.anycast
                    else (entry.point,),
                    processing_ms=host_rng.uniform(0.8, 2.0),
                    operator=provider.name)
        host.tags.add("doh-resolver")
        chain = self._memoised_chain(
            f"doh/{hostname}/{address}",
            lambda: make_chain(self.trusted_ca, hostname,
                               "2018-09-01", "2019-09-01",
                               san=(hostname,)))
        tls = TlsConfig(cert_chain=chain, alpn=("h2",))
        backend = self._backend_for(provider, host_rng)
        if provider.flaky_doh_probability > 0.0:
            backend = FlakyForwardingBackend(
                backend, host_rng.fork("flaky"),
                slow_upstream_probability=provider.flaky_doh_probability,
                regional_probabilities={"AP": 0.004})
        webpage = f"<title>{provider.name} DoH</title>"
        host.bind("tcp", 443, DohService(
            backend, tls, path=path, webpage_html=webpage,
            supports_json=(provider.name == "Google")))
        host.bind("tcp", 80, WebpageService(webpage))
        host.webpage = webpage
        return host

    def _memoised_chain(self, key: str, build) -> Tuple[Certificate, ...]:
        chain = self._chain_memo.get(key)
        if chain is None:
            chain = build()
            self._chain_memo[key] = chain
        return chain

    def _backend_for(self, provider: ProviderSpec,
                     host_rng: SeededRng) -> ResolverBackend:
        backend: ResolverBackend = RecursiveBackend(
            self.universe, host_rng.fork("recursive"),
            resolver_label=provider.name)
        if provider.fixed_answer:
            backend = FixedAnswerBackend(backend, provider.fixed_answer)
        return backend

    def _tls_config_for(self, provider: ProviderSpec,
                        spec: ResolverAddressSpec,
                        round_index: int = 0) -> TlsConfig:
        status = spec.cert_status
        # Only well-run providers (CERT_VALID) rotate; the misconfigured
        # statuses keep their historical frozen windows in every epoch.
        epoch = 0
        if status == CERT_VALID and self.config.cert_rotation_rounds > 0:
            epoch = self._rotation_effective_epoch(
                spec.address, self.rotation_epoch(round_index))
        cached = self._tls_configs.get((spec.address, epoch))
        if cached is not None:
            return cached
        if status == CERT_VALID:
            if epoch == 0:
                not_before, not_after = "2018-08-01", "2019-08-01"
            else:
                not_before, not_after = self._rotation_window(epoch)
            chain = make_chain(self.trusted_ca, provider.cert_cn,
                               not_before, not_after,
                               san=(provider.cert_cn,
                                    f"*.{provider.cert_cn}"))
        elif status == CERT_EXPIRED_2018:
            chain = make_chain(self.trusted_ca, provider.cert_cn,
                               "2017-07-01", "2018-07-20")
        elif status == CERT_EXPIRED:
            # Mostly lapsed before the campaign; a few expire mid-way so
            # the per-scan invalid counts drift slightly upward.
            lapse = ("2019-03-15"
                     if self.rng.fork(f"lapse-{spec.address}").chance(0.15)
                     else "2019-01-15")
            chain = make_chain(self.trusted_ca, provider.cert_cn,
                               "2018-01-01", lapse)
        elif status == CERT_SELF_SIGNED:
            chain = self_signed(provider.cert_cn,
                                "2018-01-01", "2028-01-01")
        elif status == CERT_FORTIGATE:
            chain = self_signed(provider.cert_cn,
                                "2017-01-01", "2027-01-01")
        elif status == CERT_BAD_CHAIN:
            leaf = self._orphan_ca.issue(provider.cert_cn,
                                         "2018-08-01", "2019-08-01")
            wrong_parent = self.secondary_ca.certificate
            assert wrong_parent is not None
            chain = (leaf, wrong_parent)
        else:
            raise ScenarioError(f"unknown cert status {status!r}")
        config = TlsConfig(cert_chain=chain)
        self._tls_configs[(spec.address, epoch)] = config
        return config

    # -- special hosts -----------------------------------------------------------

    def _derive_google_host(self, address: str) -> Host:
        """Google public DNS: Do53 on 8.8.8.8/8.8.4.4, DoH on dns.google.com.

        At the time of the experiment Google DoT was not announced, so
        the 8.8.8.8 host deliberately has no port-853 service (the
        Table 4 "n/a" cells).
        """
        host_rng = self.rng.fork(f"google-{address}")
        host = Host(address=address, country_code="US",
                    point=country("US").point, pops=GLOBAL_POPS,
                    processing_ms=1.0, operator="Google")
        backend = RecursiveBackend(self.universe,
                                   host_rng.fork("recursive"),
                                   resolver_label="Google")
        host.bind("udp", 53, Do53UdpService(backend))
        host.bind("tcp", 53, Do53TcpService(backend))
        webpage = "<title>Google Public DNS</title>"
        host.bind("tcp", 80, WebpageService(webpage))
        host.webpage = webpage
        return host

    def _derive_self_built(self) -> Host:
        """The paper's own resolver supporting Do53, DoT and DoH."""
        host_rng = self.rng.fork("self-built")
        entry = country("DE")
        host = Host(address=SELF_BUILT_IP, country_code="DE",
                    point=entry.point, processing_ms=1.2,
                    operator="self-built")
        backend = RecursiveBackend(self.universe, host_rng.fork("recursive"),
                                   resolver_label="self-built")
        chain = self._memoised_chain(
            "self-built",
            lambda: make_chain(self.trusted_ca, SELF_BUILT_HOSTNAME,
                               "2018-11-01", "2019-11-01",
                               san=(SELF_BUILT_HOSTNAME,)))
        tls = TlsConfig(cert_chain=chain)
        host.bind("udp", 53, Do53UdpService(backend))
        host.bind("tcp", 53, Do53TcpService(backend))
        host.bind("tcp", 853, DotService(backend, tls))
        host.bind("tcp", 443, DohService(backend, tls, path="/dns-query"))
        from repro.doe.dnscrypt import DNSCRYPT_PORT, DnsCryptService
        from repro.doe.doq import DOQ_PORT, DoqService
        host.bind("udp", DOQ_PORT, DoqService(backend, tls))
        host.bind("udp", DNSCRYPT_PORT, DnsCryptService(
            backend, dnscrypt_provider_key(SELF_BUILT_HOSTNAME)))
        host.tags.add("doq-resolver")
        host.tags.add("dnscrypt-resolver")
        return host

    def _derive_background_host(self, address: str, code: str) -> Host:
        """One sampled port-853-open non-DoT host."""
        from repro.netsim.host import CallableService
        entry = country(code)
        host = Host(address=address, country_code=code,
                    point=entry.point, processing_ms=2.0)
        host.tags.add("background-853")
        # Port 853 accepts TCP but speaks no TLS/DoT: getdns errors.
        host.bind("tcp", 853, CallableService(
            lambda payload, ctx: b""))
        return host

    def _derive_scaled_host(self, round_index: int, index: int,
                            address: str) -> Host:
        """One procedurally-scaled background host (open positions of
        the round's :class:`RangeSegment`)."""
        from repro.netsim.host import CallableService
        host_rng = self.rng.fork(f"bg-scale-{round_index}-{index}")
        code = host_rng.choice(BACKGROUND_COUNTRY_CODES)
        entry = country(code)
        host = Host(address=address, country_code=code,
                    point=entry.point, processing_ms=2.0)
        host.tags.add("background-853")
        host.bind("tcp", 853, CallableService(
            lambda payload, ctx: b""))
        return host

    def _derive_atlas_host(self, probe: AtlasProbe,
                           is_capable: bool) -> Host:
        host_rng = self.rng.fork(f"local-{probe.local_resolver_ip}")
        host = Host(address=probe.local_resolver_ip,
                    country_code=probe.env.country_code,
                    point=probe.env.point,
                    processing_ms=host_rng.uniform(1.0, 3.0),
                    operator="isp-local")
        backend = RecursiveBackend(self.universe,
                                   host_rng.fork("recursive"),
                                   resolver_label="isp-local")
        host.bind("udp", 53, Do53UdpService(backend))
        host.bind("tcp", 53, Do53TcpService(backend))
        if is_capable:
            isp_name = (f"dns.isp-{probe.env.country_code.lower()}"
                        ".example")
            chain = self._memoised_chain(
                f"atlas/{probe.local_resolver_ip}",
                lambda: make_chain(self.trusted_ca, isp_name,
                                   "2018-10-01", "2019-10-01"))
            host.bind("tcp", 853, DotService(
                backend, TlsConfig(cert_chain=chain)))
            host.tags.add("dot-local-resolver")
        return host

    # -- vantage populations -----------------------------------------------------

    def proxyrack(self) -> List[VantagePoint]:
        if self._proxyrack is None:
            self._proxyrack = build_proxyrack(
                self.config.scaled(self.config.proxyrack_endpoints),
                self.rng.fork("proxyrack"),
                interception_count=self.config.intercepted_clients,
                hijacked_router_count=self.config.hijacked_routers)
        return self._proxyrack

    def zhima(self) -> List[VantagePoint]:
        if self._zhima is None:
            self._zhima = build_zhima(
                self.config.scaled(self.config.zhima_endpoints),
                self.rng.fork("zhima"))
        return self._zhima

    def atlas(self) -> Tuple[List[AtlasProbe], List[str]]:
        if self._atlas is None:
            self._atlas = build_atlas_probes(
                self.config.scaled(self.config.atlas_probes),
                self.rng.fork("atlas"))
        return self._atlas

    def platform_point_count(self, platform: str,
                             sample: float = 1.0) -> int:
        """How many vantage points a platform study will visit.

        Matches ``platform_points``'s down-sampling rule (keep the
        first ``round(len * sample)``, at least one) without building a
        single point — parents plan shards from this number alone.
        """
        if platform == "proxyrack":
            total = self.config.scaled(self.config.proxyrack_endpoints)
        elif platform == "zhima":
            total = self.config.scaled(self.config.zhima_endpoints)
        else:
            raise ScenarioError(f"unknown vantage platform {platform!r}")
        if sample >= 1.0:
            return total
        return max(1, round(total * sample))

    def iter_platform_points(self, platform: str, sample: float = 1.0,
                             start: int = 0, stop: Optional[int] = None):
        """Stream vantage points [start, stop) of one platform.

        Point derivation is per-index pure, so a streamed window is
        field-for-field identical to the same slice of the fully-built
        list (and the memoised list is sliced directly when present).
        Work and memory are proportional to the window size.
        """
        count = self.platform_point_count(platform, sample)
        stop = count if stop is None else min(stop, count)
        if start >= stop:
            return iter(())
        if platform == "proxyrack":
            if self._proxyrack is not None:
                return iter(self._proxyrack[start:stop])
            return iter_proxyrack(
                self.config.scaled(self.config.proxyrack_endpoints),
                self.rng.fork("proxyrack"),
                interception_count=self.config.intercepted_clients,
                hijacked_router_count=self.config.hijacked_routers,
                start=start, stop=stop)
        if self._zhima is not None:
            return iter(self._zhima[start:stop])
        return iter_zhima(
            self.config.scaled(self.config.zhima_endpoints),
            self.rng.fork("zhima"), start=start, stop=stop)

    # -- public lists & datasets ---------------------------------------------------

    def public_dot_list(self) -> List[str]:
        """Advertised addresses of providers on the public DoT lists."""
        addresses = []
        for provider in self.providers:
            if not provider.in_public_list:
                continue
            addresses.extend(spec.address for spec in provider.addresses
                             if spec.advertised)
        return addresses

    def public_doh_list(self) -> List[str]:
        """URI templates on the public DoH list (15 of the 17)."""
        return [provider.doh_template for provider in self.providers
                if provider.doh_template and provider.in_public_list]

    def all_doh_templates(self) -> List[str]:
        return [provider.doh_template for provider in self.providers
                if provider.doh_template]

    def url_dataset(self):
        if self._url_dataset is None:
            from repro.datasets.urldataset import build_url_dataset
            self._url_dataset = build_url_dataset(self)
        return self._url_dataset

    def bootstrap(self, hostname: str) -> Tuple[str, ...]:
        """Clear-text bootstrap resolution for DoH templates."""
        return self.universe.resolve_public(hostname)

    # -- probe-domain helpers --------------------------------------------------------

    def probe_name(self, token: str) -> DnsName:
        return self.probe_origin.child(token.lower())

    def expected_probe_answer(self) -> Tuple[str, ...]:
        return (PROBE_ANSWER,)


def build_scenario(config: Optional[ScenarioConfig] = None) -> Scenario:
    """Build the full calibrated world."""
    scenario = Scenario(config or ScenarioConfig())
    _populate_universe(scenario)
    scenario.providers = build_provider_population(
        scenario.rng.fork("providers"),
        total_rounds=scenario.config.scan_rounds,
        # The platform's own self-built DoT resolver (a DE host, present
        # in every scan round) counts toward DE in the sweeps; reserve
        # its slot so the measured DE column lands exactly on Table 2.
        reserved={"DE": (1, 1)})
    return scenario


def _populate_universe(scenario: Scenario) -> None:
    universe = scenario.universe
    origin = scenario.probe_origin
    probe_zone = Zone(origin, ResourceRecord.soa(
        origin, origin.child("ns1"), origin.child("hostmaster"), serial=1))
    probe_zone.add(ResourceRecord.a(origin.child("*"), PROBE_ANSWER,
                                    ttl=1))
    universe.add_zone(probe_zone, logged=True)
    # A handful of popular public domains for realistic traffic.
    for hostname, address in (
            ("www.example.com", "93.184.216.34"),
            ("www.wikipedia.org", "208.80.154.224"),
            ("news.ycombinator.com", "209.216.230.240"),
            ("www.openstreetmap.org", "130.117.76.9"),
            ("mirror.centos.org", "147.75.69.225"),
    ):
        universe.host_a(hostname, address)
