"""Provider ground truth: who runs DoT/DoH resolvers in the simulation.

The population is generated to match the paper's server-side findings:

* >1.5K open DoT resolver addresses per scan, with the Table 2 country
  distribution and its Feb 1 → May 1 growth/shrinkage;
* a handful of large providers covering most addresses (CleanBrowsing,
  Cloudflare, Quad9, a Chinese cloud platform, Perfect Privacy,
  dnsfilter.com), plus a long tail where ~70% of providers run a single
  address;
* at the May 1 scan, 122 resolvers of 62 providers with invalid
  certificates: 27 expired, 67 self-signed (47 of them FortiGate
  factory defaults on TLS-inspection devices), 28 broken chains;
* 17 public DoH resolvers, 15 of them on the public list and 2 beyond it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.netsim.geo import COUNTRIES
from repro.netsim.ipv4 import int_to_ip, ip_to_int
from repro.netsim.rand import SeededRng

#: Cert-status labels; "fortigate" is self-signed with the vendor's
#: default CN pattern, which the cert study singles out.
CERT_VALID = "valid"
CERT_EXPIRED = "expired"
CERT_EXPIRED_2018 = "expired_2018"
CERT_SELF_SIGNED = "self_signed"
CERT_BAD_CHAIN = "bad_chain"
CERT_FORTIGATE = "fortigate"

#: Table 2 of the paper: open DoT resolvers in the top-10 countries at
#: the first (Feb 1) and last (May 1) scans.
TABLE2_COUNTS: Dict[str, Tuple[int, int]] = {
    "IE": (456, 951),
    "CN": (257, 40),
    "US": (100, 531),
    "DE": (71, 86),
    "FR": (59, 56),
    "JP": (34, 27),
    "NL": (30, 36),
    "GB": (25, 21),
    "BR": (22, 49),
    "RU": (17, 40),
}

#: Long-tail countries hosting the remaining resolvers (roughly constant
#: across the campaign).
OTHER_COUNTRY_COUNTS: Dict[str, Tuple[int, int]] = {
    "CA": (16, 17), "PL": (15, 16), "SE": (14, 14), "AU": (13, 14),
    "IT": (13, 13), "ES": (12, 13), "CZ": (12, 12), "UA": (12, 12),
    "SG": (12, 12), "ZA": (11, 12), "CH": (11, 12), "RO": (11, 11),
    "FI": (11, 11), "AT": (11, 11), "DK": (10, 11), "TR": (10, 11),
    "IN": (10, 11), "KR": (10, 10), "HK": (10, 10), "TW": (10, 10),
    "NO": (10, 10), "BE": (10, 10), "GR": (9, 10), "HU": (9, 10),
    "BG": (9, 9), "RS": (9, 9), "AR": (9, 9), "MX": (9, 9),
    "TH": (9, 9), "MY": (9, 9), "ID": (9, 9), "VN": (9, 9),
    "PH": (9, 9), "CL": (9, 9), "CO": (8, 9), "IL": (8, 8),
    "NZ": (8, 8), "PT": (8, 8), "SA": (8, 8), "AE": (8, 8),
    "EG": (8, 8), "KZ": (8, 8), "PE": (8, 8), "MA": (8, 8),
    "KE": (8, 8), "NG": (8, 8),
}


@dataclass
class ResolverAddressSpec:
    """One resolver address in the ground truth."""

    address: str
    country: str
    cert_status: str = CERT_VALID
    #: Whether the provider advertises this address publicly.
    advertised: bool = True
    #: Scan rounds (0-based, inclusive) during which the address answers.
    first_round: int = 0
    last_round: int = 10_000

    def active_in_round(self, round_index: int) -> bool:
        return self.first_round <= round_index <= self.last_round


@dataclass
class ProviderSpec:
    """One DoT/DoH provider (grouping unit of Figures 3-4)."""

    name: str
    #: Certificate Common Name; the paper groups resolvers into providers
    #: by the CN (SLD when the CN is a domain name).
    cert_cn: str
    kind: str  # "large" | "small" | "inspection"
    addresses: List[ResolverAddressSpec] = field(default_factory=list)
    #: DoH URI template, when the provider also runs DoH.
    doh_template: Optional[str] = None
    #: DoH bootstrap hostname -> address mapping entries.
    doh_hosts: Dict[str, str] = field(default_factory=dict)
    #: Listed on the public resolver lists (dnsprivacy.org / curl wiki)?
    in_public_list: bool = False
    #: Special backend behaviours understood by the scenario builder.
    fixed_answer: Optional[str] = None
    flaky_doh_probability: float = 0.0
    anycast: bool = False
    #: Also answers DoQ on UDP 784 (advertised resolver addresses only).
    doq: bool = False
    #: Also answers DNSCrypt on UDP 443 (advertised addresses only).
    dnscrypt: bool = False

    def addresses_in_round(self, round_index: int) -> List[ResolverAddressSpec]:
        return [spec for spec in self.addresses
                if spec.active_in_round(round_index)]

    def has_invalid_cert_in_round(self, round_index: int) -> bool:
        return any(spec.cert_status != CERT_VALID
                   for spec in self.addresses_in_round(round_index))


class _AddressAllocator:
    """Hands out stable unique public addresses per country."""

    _COUNTRY_BLOCKS = {code: index for index, code in
                       enumerate(sorted(COUNTRIES))}

    def __init__(self):
        self._next_offset: Dict[str, int] = {}

    def allocate(self, country_code: str) -> str:
        # Carve per-country space out of 5.0.0.0/8 .. 95.x by country
        # index; offsets walk through successive /24s for realism.
        block_index = self._COUNTRY_BLOCKS.get(country_code, 0)
        offset = self._next_offset.get(country_code, 0)
        self._next_offset[country_code] = offset + 1
        base = ip_to_int("5.0.0.0") + (block_index << 17)
        value = base + (offset // 200) * 256 + (offset % 200) + 1
        return int_to_ip(value)


def _interpolate(first: int, last: int, round_index: int,
                 total_rounds: int) -> int:
    if total_rounds <= 1:
        return last
    fraction = round_index / (total_rounds - 1)
    return round(first + (last - first) * fraction)


def _round_span(rng: SeededRng, first_count: int, last_count: int,
                total_rounds: int, index_within: int) -> Tuple[int, int]:
    """Assign one address's active rounds given its country's growth.

    Addresses present from the start keep running; growth adds addresses
    with later ``first_round``; shrinkage retires addresses at sampled
    rounds. ``index_within`` orders addresses within the country pool.
    """
    if index_within < min(first_count, last_count):
        return 0, total_rounds
    if last_count >= first_count:
        # Growth: the extra addresses come online over the campaign.
        extra_rank = index_within - first_count
        extra_total = max(1, last_count - first_count)
        first_round = 1 + round(extra_rank / extra_total
                                * (total_rounds - 2))
        return min(first_round, total_rounds - 1), total_rounds
    # Shrinkage: the surplus addresses go away over the campaign.
    dying_rank = index_within - last_count
    dying_total = max(1, first_count - last_count)
    last_round = (total_rounds - 2) - round(
        dying_rank / dying_total * (total_rounds - 2))
    return 0, max(0, last_round)


def build_provider_population(
        rng: SeededRng, total_rounds: int = 10,
        reserved: Optional[Dict[str, Tuple[int, int]]] = None,
) -> List[ProviderSpec]:
    """Generate the full provider ground truth.

    ``reserved`` maps country codes to (first-scan, last-scan) resolver
    counts contributed by hosts *outside* this population — e.g. the
    platform's own self-built DoT resolver — so the long-tail top-up
    leaves room for them and the scans still land exactly on the
    Table 2 targets.
    """
    allocator = _AddressAllocator()
    providers: List[ProviderSpec] = []
    providers.extend(_large_providers(allocator, total_rounds))
    providers.extend(_misconfigured_providers(rng, allocator, total_rounds))
    providers.extend(_fortigate_devices(rng, allocator, total_rounds))
    _fill_long_tail(providers, rng, allocator, total_rounds,
                    reserved=reserved)
    providers.extend(_doh_only_providers())
    return providers


# -- large providers ----------------------------------------------------------


def _large_providers(allocator: _AddressAllocator,
                     total_rounds: int) -> List[ProviderSpec]:
    providers = []

    cloudflare = ProviderSpec(
        name="Cloudflare", cert_cn="cloudflare-dns.com", kind="large",
        in_public_list=True, anycast=True, doq=True,
        doh_template="https://mozilla.cloudflare-dns.com/dns-query{?dns}",
        doh_hosts={"mozilla.cloudflare-dns.com": "104.16.249.249",
                   "cloudflare-dns.com": "104.16.248.249"},
    )
    cloudflare.addresses.append(ResolverAddressSpec("1.1.1.1", "US"))
    cloudflare.addresses.append(ResolverAddressSpec("1.0.0.1", "US"))
    for index in range(45):
        cloudflare.addresses.append(ResolverAddressSpec(
            allocator.allocate("US"), "US", advertised=False))
    providers.append(cloudflare)

    quad9 = ProviderSpec(
        name="Quad9", cert_cn="quad9.net", kind="large",
        in_public_list=True, anycast=True, doq=True, dnscrypt=True,
        doh_template="https://dns.quad9.net/dns-query{?dns}",
        doh_hosts={"dns.quad9.net": "9.9.9.10"},
        flaky_doh_probability=0.19,
    )
    quad9.addresses.append(ResolverAddressSpec("9.9.9.9", "US"))
    quad9.addresses.append(ResolverAddressSpec("149.112.112.112", "US"))
    for index in range(8):
        quad9.addresses.append(ResolverAddressSpec(
            allocator.allocate("US"), "US", advertised=False))
    providers.append(quad9)

    cleanbrowsing = ProviderSpec(
        name="CleanBrowsing", cert_cn="cleanbrowsing.org", kind="large",
        in_public_list=True, dnscrypt=True,
        doh_template="https://doh.cleanbrowsing.org/doh/family-filter"
                     "{?dns}",
        doh_hosts={"doh.cleanbrowsing.org": "185.228.168.10"},
    )
    for index in range(931):
        first, last = _span_for_growth(index, 436, 931, total_rounds)
        cleanbrowsing.addresses.append(ResolverAddressSpec(
            allocator.allocate("IE"), "IE", advertised=(index < 2),
            first_round=first, last_round=last))
    for index in range(430):
        first, last = _span_for_growth(index, 8, 430, total_rounds)
        cleanbrowsing.addresses.append(ResolverAddressSpec(
            allocator.allocate("US"), "US", advertised=False,
            first_round=first, last_round=last))
    providers.append(cleanbrowsing)

    cn_cloud = ProviderSpec(
        name="YunDNS Cloud", cert_cn="yundns.example.cn", kind="large")
    for index in range(237):
        first, last = _span_for_shrink(index, 237, 20, total_rounds)
        cn_cloud.addresses.append(ResolverAddressSpec(
            allocator.allocate("CN"), "CN", advertised=False,
            first_round=first, last_round=last))
    providers.append(cn_cloud)

    perfect_privacy = ProviderSpec(
        name="Perfect Privacy", cert_cn="perfect-privacy.com",
        kind="large", in_public_list=True)
    for index in range(12):
        perfect_privacy.addresses.append(ResolverAddressSpec(
            allocator.allocate("DE"), "DE"))
    for index in range(6):
        perfect_privacy.addresses.append(ResolverAddressSpec(
            allocator.allocate("NL"), "NL"))
    # The two self-signed resolvers of Finding 1.2.
    for index in range(2):
        perfect_privacy.addresses.append(ResolverAddressSpec(
            allocator.allocate("DE"), "DE",
            cert_status=CERT_SELF_SIGNED))
    providers.append(perfect_privacy)

    dnsfilter = ProviderSpec(
        name="DNSFilter", cert_cn="dnsfilter.com", kind="large",
        fixed_answer="198.51.100.7")
    dnsfilter.addresses.append(ResolverAddressSpec("103.247.37.37", "US"))
    for index in range(14):
        dnsfilter.addresses.append(ResolverAddressSpec(
            allocator.allocate("US"), "US", advertised=False))
    providers.append(dnsfilter)

    providers.extend(_mid_providers(allocator, total_rounds))
    providers.append(_edge_cdn_provider(allocator, total_rounds))
    return providers


def _edge_cdn_provider(allocator: _AddressAllocator,
                       total_rounds: int) -> ProviderSpec:
    """A CDN-style operator with edge resolvers in dozens of countries.

    Keeps every scan above the paper's ~1.5K-resolver floor while the
    Table 2 top-10 counts stay pinned to their reported values.
    """
    spec = ProviderSpec(name="EdgeCast DNS", cert_cn="edgedns.example",
                        kind="large", in_public_list=True)
    per_country = 7
    for country_code in sorted(OTHER_COUNTRY_COUNTS):
        for index in range(per_country):
            spec.addresses.append(ResolverAddressSpec(
                allocator.allocate(country_code), country_code,
                advertised=(country_code == "CA" and index == 0)))
    return spec


#: Mid-size national operators: (name, country, first-scan count,
#: last-scan count). These absorb most of the Table 2 counts that the
#: global operators do not explain.
_MID_PROVIDER_SPECS: Tuple[Tuple[str, str, int, int], ...] = (
    ("opennic-de.example", "DE", 30, 45),
    ("fdn-fr.example", "FR", 30, 30),
    ("giganet-br.example", "BR", 10, 35),
    ("rudns-ru.example", "RU", 4, 25),
    ("nlnet-dns.example", "NL", 15, 15),
    ("iij-jp.example", "JP", 15, 10),
)


def _mid_providers(allocator: _AddressAllocator,
                   total_rounds: int) -> List[ProviderSpec]:
    providers = []
    for name, country_code, first_count, last_count in _MID_PROVIDER_SPECS:
        spec = ProviderSpec(name=name.split(".")[0].title(),
                            cert_cn=name, kind="medium")
        pool = max(first_count, last_count)
        for index in range(pool):
            if last_count >= first_count:
                first, last = _span_for_growth(index, first_count,
                                               last_count, total_rounds)
            else:
                first, last = _span_for_shrink(index, first_count,
                                               last_count, total_rounds)
            spec.addresses.append(ResolverAddressSpec(
                allocator.allocate(country_code), country_code,
                advertised=(index == 0),
                first_round=first, last_round=last))
        providers.append(spec)
    return providers


def _span_for_growth(index: int, first_count: int, last_count: int,
                     total_rounds: int) -> Tuple[int, int]:
    if index < first_count:
        return 0, total_rounds
    extra_rank = index - first_count
    extra_total = max(1, last_count - first_count)
    first_round = 1 + round(extra_rank / extra_total * (total_rounds - 2))
    return min(first_round, total_rounds - 1), total_rounds


def _span_for_shrink(index: int, first_count: int, last_count: int,
                     total_rounds: int) -> Tuple[int, int]:
    if index < last_count:
        return 0, total_rounds
    dying_rank = index - last_count
    dying_total = max(1, first_count - last_count)
    last_round = (total_rounds - 2) - round(
        dying_rank / dying_total * (total_rounds - 2))
    return 0, max(0, last_round)


# -- misconfigured providers ---------------------------------------------------


def _misconfigured_providers(rng: SeededRng, allocator: _AddressAllocator,
                             total_rounds: int) -> List[ProviderSpec]:
    """Providers whose resolvers carry invalid certificates at May 1.

    Sizes are chosen so the final scan sees 27 expired (9 of them expired
    back in 2018), 28 broken chains and 18 non-FortiGate self-signed
    certificates beyond Perfect Privacy's 2.
    """
    providers = []
    expired_sizes = [10, 5, 4, 3, 2, 2, 1]  # 27 resolvers, 7 providers
    expired_2018_budget = 9
    countries = ["DE", "FR", "US", "GB", "RU", "BR", "NL"]
    for index, size in enumerate(expired_sizes):
        country_code = countries[index % len(countries)]
        spec = ProviderSpec(
            name=f"expired-{index}.example",
            cert_cn=f"dns.expired-{index}.example", kind="small")
        for address_index in range(size):
            status = (CERT_EXPIRED_2018 if expired_2018_budget > 0
                      else CERT_EXPIRED)
            if expired_2018_budget > 0:
                expired_2018_budget -= 1
            spec.addresses.append(ResolverAddressSpec(
                allocator.allocate(country_code), country_code,
                cert_status=status))
        providers.append(spec)

    badchain_sizes = [12, 8, 5, 3]  # 28 resolvers, 4 providers
    for index, size in enumerate(badchain_sizes):
        country_code = ["US", "FR", "JP", "CA"][index]
        spec = ProviderSpec(
            name=f"badchain-{index}.example",
            cert_cn=f"resolver.badchain-{index}.example", kind="small")
        for address_index in range(size):
            spec.addresses.append(ResolverAddressSpec(
                allocator.allocate(country_code), country_code,
                cert_status=CERT_BAD_CHAIN))
        providers.append(spec)

    selfsigned_sizes = [10, 5, 3]  # 18 resolvers, 3 providers
    for index, size in enumerate(selfsigned_sizes):
        country_code = ["RU", "UA", "BR"][index]
        spec = ProviderSpec(
            name=f"selfsigned-{index}.example",
            cert_cn=f"dns.selfsigned-{index}.example", kind="small")
        for address_index in range(size):
            spec.addresses.append(ResolverAddressSpec(
                allocator.allocate(country_code), country_code,
                cert_status=CERT_SELF_SIGNED))
        providers.append(spec)
    return providers


def _fortigate_devices(rng: SeededRng, allocator: _AddressAllocator,
                       total_rounds: int) -> List[ProviderSpec]:
    """47 FortiGate TLS-inspection devices acting as DoT proxies."""
    providers = []
    codes = list(TABLE2_COUNTS) + list(OTHER_COUNTRY_COUNTS)
    for index in range(47):
        country_code = codes[index % len(codes)]
        serial = f"FGT60E{4000 + index:04d}"
        spec = ProviderSpec(
            name=f"FortiGate {serial}", cert_cn=serial, kind="inspection")
        spec.addresses.append(ResolverAddressSpec(
            allocator.allocate(country_code), country_code,
            cert_status=CERT_FORTIGATE, advertised=False))
        providers.append(spec)
    return providers


# -- long tail -----------------------------------------------------------------


def _fill_long_tail(providers: List[ProviderSpec], rng: SeededRng,
                    allocator: _AddressAllocator,
                    total_rounds: int,
                    reserved: Optional[Dict[str, Tuple[int, int]]] = None,
                    ) -> None:
    """Top up each country to its Table 2 / long-tail target counts."""
    final_round = total_rounds - 1
    allocated: Dict[str, Tuple[int, int]] = dict(reserved or {})
    for spec in providers:
        for address in spec.addresses:
            first_total, last_total = allocated.get(address.country, (0, 0))
            first_total += 1 if address.active_in_round(0) else 0
            last_total += 1 if address.active_in_round(final_round) else 0
            allocated[address.country] = (first_total, last_total)

    targets = dict(TABLE2_COUNTS)
    targets.update(OTHER_COUNTRY_COUNTS)
    small_index = 0
    tail_rng = rng.fork("long-tail")
    for country_code, (first_target, last_target) in sorted(targets.items()):
        have_first, have_last = allocated.get(country_code, (0, 0))
        need_first = max(0, first_target - have_first)
        need_last = max(0, last_target - have_last)
        pool_size = max(need_first, need_last)
        index_within = 0
        while index_within < pool_size:
            # ~70% of long-tail providers run one address.
            if tail_rng.chance(0.7):
                size = 1
            else:
                size = tail_rng.randint(2, 5)
            size = min(size, pool_size - index_within)
            spec = ProviderSpec(
                name=f"smalldns-{small_index}.example",
                cert_cn=f"dns.smalldns-{small_index}.example",
                kind="small",
                in_public_list=False)
            for _ in range(size):
                first, last = _round_span(tail_rng, need_first, need_last,
                                          total_rounds, index_within)
                spec.addresses.append(ResolverAddressSpec(
                    allocator.allocate(country_code), country_code,
                    first_round=first, last_round=last))
                index_within += 1
            providers.append(spec)
            small_index += 1


# -- DoH-only providers ---------------------------------------------------------


def _doh_only_providers() -> List[ProviderSpec]:
    """Providers that run DoH without an open DoT resolver.

    Together with Cloudflare, Quad9, CleanBrowsing and the two
    beyond-the-list finds this yields the paper's 17 public DoH services.
    """
    specs = []

    google = ProviderSpec(
        name="Google", cert_cn="dns.google.com", kind="large",
        in_public_list=True, anycast=True,
        doh_template="https://dns.google.com/resolve{?dns}",
        doh_hosts={"dns.google.com": "216.58.192.10"})
    specs.append(google)

    in_list = [
        ("crypto.sx", "doh.crypto.sx", "185.2.24.10"),
        ("commons.host", "commons.host", "51.15.124.10"),
        ("SecureDNS", "doh.securedns.eu", "146.185.167.43"),
        ("dnsoverhttps.net", "dns.dnsoverhttps.net", "176.56.236.21"),
        ("doh.li", "doh.li", "46.101.66.244"),
        ("dns-over-https.com", "dns.dns-over-https.com", "104.236.178.10"),
        ("AppliedPrivacy", "doh.appliedprivacy.net", "37.252.185.229"),
        ("captnemo", "doh.captnemo.in", "139.59.48.222"),
        ("tiar.app", "doh.tiar.app", "174.138.29.175"),
        ("jp.tiar.app", "jp.tiar.app", "172.104.93.80"),
        ("dnswarden", "doh.dnswarden.com", "116.203.70.156"),
    ]
    for name, hostname, address in in_list:
        specs.append(ProviderSpec(
            name=name, cert_cn=hostname, kind="small", in_public_list=True,
            doh_template=f"https://{hostname}/dns-query{{?dns}}",
            doh_hosts={hostname: address}))

    beyond_list = [
        ("rubyfish", "dns.rubyfish.cn", "118.89.110.78"),
        ("233py", "dns.233py.com", "47.101.136.37"),
    ]
    for name, hostname, address in beyond_list:
        specs.append(ProviderSpec(
            name=name, cert_cn=hostname, kind="small", in_public_list=False,
            doh_template=f"https://{hostname}/dns-query{{?dns}}",
            doh_hosts={hostname: address}))
    return specs
