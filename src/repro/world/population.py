"""Vantage-point populations: ProxyRack (global), Zhima (censored), Atlas.

Each vantage point is a :class:`repro.netsim.network.ClientEnvironment`
plus platform metadata. Client-side disruption sources are attached here
with per-country probabilities calibrated to Table 4:

* port-53 filtering of prominent resolver addresses (1.1.1.1, 8.8.8.8),
  concentrated in Indonesia, Vietnam and India;
* LAN devices squatting on 1.1.1.1 (routers, modems, blackholes —
  Table 5), including crypto-hijacked MikroTik routers;
* transparent DNS proxies answering with wrong records (the small
  *Incorrect* rates);
* TLS-interception middleboxes re-signing certificates (Table 6);
* residual proxy-network flakiness producing the sub-1% noise floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.netsim.geo import COUNTRIES, country
from repro.netsim.host import Host
from repro.netsim.middlebox import (
    IpConflictDevice,
    Middlebox,
    PortFilter,
    RuleSet,
    TlsInterceptor,
    Verdict,
)
from repro.netsim.network import ClientEnvironment
from repro.netsim.rand import SeededRng
from repro.resolvers.backends import SpoofingBackend
from repro.resolvers.frontends import Do53TcpService, Do53UdpService, WebpageService
from repro.tlssim.certs import CertificateAuthority

PROMINENT_DO53_TARGETS = ("1.1.1.1", "8.8.8.8")

#: Countries where port-53 filtering devices concentrate ("Over 60%
#: affected clients are located in Indonesia, Vietnam and India").
HIGH_FILTER_COUNTRIES = {"ID": 0.78, "VN": 0.72, "IN": 0.70}
BASE_FILTER_PROBABILITY = 0.062

#: Probability a global client has a LAN device on 1.1.1.1 (drives the
#: ~1.1% Cloudflare DoT failure rate).
CONFLICT_PROBABILITY = 0.011

#: Probability of a transparent DNS proxy spoofing one prominent
#: resolver (drives the ~0.1% Incorrect rates for clear text).
DNS_PROXY_PROBABILITY = 0.0009

#: Residual flakiness of residential proxy endpoints.
GLOBAL_FLAKE_PROBABILITY = 0.0008
CENSORED_FLAKE_PROBABILITY = 0.0035

#: Conflict-device templates: (kind, open tcp ports, webpage, weight).
#: Calibrated against Table 5's port census among DoT-failed clients.
CONFLICT_DEVICE_TEMPLATES: Tuple[Tuple[str, Tuple[int, ...], Optional[str], float], ...] = (
    ("blackhole", (), None, 0.46),
    ("router", (80, 443, 22, 23, 179), "<title>MikroTik RouterOS</title>", 0.17),
    ("modem", (80, 443, 67), "<title>Powerbox Gvt Modem</title>", 0.13),
    ("auth-portal", (80, 443), "<title>Auth System Login</title>", 0.09),
    ("dns-box", (53, 80), "<title>Internal DNS</title>", 0.07),
    ("snmp-box", (161, 123, 139), None, 0.04),
    ("ssh-box", (22,), None, 0.04),
)

#: Interception-device profiles drawn from Table 6: CA common names the
#: re-signed certificates carry and whether only port 443 is inspected.
INTERCEPTOR_PROFILES: Tuple[Tuple[str, str, Tuple[int, ...]], ...] = (
    ("SonicWall Firewall DPI-SSL", "sonicwall", (443, 853)),
    ("None", "unknown", (443, 853)),
    ("Sample CA 2", "generic-dpi", (443, 853)),
    ("NThmYzgyYT", "unknown", (443, 853)),
    ("c41618c762bf890f", "unknown", (443, 853)),
    ("FortiGate CA", "fortinet", (443, 853)),
)

#: Example ASes for intercepted clients (Table 6).
INTERCEPTED_AS_EXAMPLES: Tuple[Tuple[int, str, str], ...] = (
    (44725, "Sinam LLC", "LA"),
    (17488, "Hathway IP Over Cable Internet", "IN"),
    (24835, "Vodafone Data", "EG"),
    (4713, "NTT Communications Corporation", "JP"),
    (52532, "Speednet Telecomunicacoes Ldta", "BR"),
    (27699, "Telefonica Brazil S.A", "BR"),
)


class RandomDrop(Middlebox):
    """Residual endpoint flakiness: some destinations just don't work.

    The verdict is drawn once per ``(ip, port)`` and then memoised, so a
    broken path stays broken across the retries the reachability test
    performs — matching how residential-proxy path problems behave.
    """

    def __init__(self, name: str, rng: SeededRng, probability: float):
        self.name = name
        self.rng = rng
        self.probability = probability
        self._verdicts: Dict[Tuple[str, int], Verdict] = {}

    def tcp_verdict(self, dst_ip: str, port: int) -> Verdict:
        key = (dst_ip, port)
        verdict = self._verdicts.get(key)
        if verdict is None:
            verdict = (Verdict.DROP if self.rng.chance(self.probability)
                       else Verdict.ALLOW)
            self._verdicts[key] = verdict
        return verdict

    def udp_verdict(self, dst_ip: str, port: int) -> Verdict:
        return self.tcp_verdict(dst_ip, port)


@dataclass
class VantagePoint:
    """One measurement endpoint recruited through a proxy network."""

    env: ClientEnvironment
    platform: str
    #: Remaining endpoint lifetime; the performance test discards
    #: endpoints about to expire (Section 4.1).
    remaining_uptime_s: float = 600.0
    conflict_kind: Optional[str] = None
    interceptor_cn: Optional[str] = None
    interceptor_ports: Tuple[int, ...] = ()


def _sample_country(rng: SeededRng) -> str:
    codes = sorted(COUNTRIES)
    weights = [COUNTRIES[code].proxy_weight for code in codes]
    return rng.weighted_choice(codes, weights)


def _client_address(rng: SeededRng, index: int) -> str:
    # Residential space carved from 100.128.0.0 upward, one /24 per
    # ~160 clients so netblock analyses have realistic density.
    base = (100 << 24) | (128 << 16)
    value = base + (index // 160) * 256 + (index % 160) + 40
    from repro.netsim.ipv4 import int_to_ip
    return int_to_ip(value)


def _make_conflict_device(rng: SeededRng, claimed_ip: str,
                          kind_override: Optional[str],
                          env: ClientEnvironment) -> IpConflictDevice:
    if kind_override is not None:
        template = next(t for t in CONFLICT_DEVICE_TEMPLATES
                        if t[0] == kind_override)
    else:
        kinds = [t for t in CONFLICT_DEVICE_TEMPLATES]
        template = rng.weighted_choice(kinds, [t[3] for t in kinds])
    kind, ports, webpage, _ = template
    device = Host(address=f"lan-{env.label}", country_code=env.country_code,
                  point=env.point, processing_ms=0.8, webpage=webpage)
    for port in ports:
        if port == 53:
            device.bind("tcp", 53, Do53TcpService(
                SpoofingBackend("192.0.2.66")))
            device.bind("udp", 53, Do53UdpService(
                SpoofingBackend("192.0.2.66")))
        elif port in (80, 443) and webpage is not None:
            device.bind("tcp", port, WebpageService(webpage))
        else:
            device.bind("tcp", port, WebpageService(""))
    return IpConflictDevice(claimed_ip, device, kind)


def _make_hijacked_router(env: ClientEnvironment,
                          claimed_ip: str) -> IpConflictDevice:
    """A crypto-hijacked MikroTik router with coin-mining injection."""
    webpage = ("<title>MikroTik RouterOS</title>"
               "<script src='https://coinhive.example/miner.js'></script>")
    device = Host(address=f"lan-{env.label}", country_code=env.country_code,
                  point=env.point, processing_ms=0.8, webpage=webpage)
    for port in (80, 443, 22, 23, 179):
        device.bind("tcp", port, WebpageService(webpage))
    return IpConflictDevice(claimed_ip, device, "hijacked-router")


def _make_dns_proxy(env: ClientEnvironment, claimed_ip: str) -> IpConflictDevice:
    """A transparent proxy spoofing one resolver's clear-text DNS."""
    device = Host(address=f"lan-{env.label}", country_code=env.country_code,
                  point=env.point, processing_ms=0.8)
    device.bind("tcp", 53, Do53TcpService(SpoofingBackend("192.0.2.66")))
    device.bind("udp", 53, Do53UdpService(SpoofingBackend("192.0.2.66")))
    return IpConflictDevice(claimed_ip, device, "dns-proxy")


def proxyrack_point(index: int, rng: SeededRng, intercept_slots: set,
                    hijack_slots: set) -> VantagePoint:
    """Derive one ProxyRack endpoint — pure given (index, seed, slots).

    Every random draw comes from the per-index ``pr-{index}`` fork, so
    a point is identical whether it is built inside a full list, a
    streamed window, or alone.
    """
    client_rng = rng.fork(f"pr-{index}")
    code = _sample_country(client_rng)
    env = ClientEnvironment.in_country(
        f"proxyrack-{index}", _client_address(client_rng, index), code,
        client_rng)
    env.middleboxes.append(RandomDrop(
        "residual-loss", client_rng.fork("loss"),
        GLOBAL_FLAKE_PROBABILITY))
    point = VantagePoint(
        env=env, platform="proxyrack",
        remaining_uptime_s=client_rng.uniform(30.0, 3600.0))

    filter_probability = HIGH_FILTER_COUNTRIES.get(
        code, BASE_FILTER_PROBABILITY)
    if client_rng.chance(filter_probability):
        env.middleboxes.append(PortFilter(
            "port53-filter",
            RuleSet(blocked_endpoints={
                (target, 53) for target in PROMINENT_DO53_TARGETS}),
            action=Verdict.DROP))

    if index in hijack_slots:
        conflict = _make_hijacked_router(env, "1.1.1.1")
        env.conflicts["1.1.1.1"] = conflict
        point.conflict_kind = conflict.kind
    elif client_rng.chance(CONFLICT_PROBABILITY):
        conflict = _make_conflict_device(client_rng, "1.1.1.1", None, env)
        env.conflicts["1.1.1.1"] = conflict
        point.conflict_kind = conflict.kind

    for target in PROMINENT_DO53_TARGETS + ("9.9.9.9",):
        if target not in env.conflicts and client_rng.chance(
                DNS_PROXY_PROBABILITY):
            env.conflicts[target] = _make_dns_proxy(env, target)

    if index in intercept_slots:
        _attach_interceptor(point, client_rng)

    _apply_route_penalties(env, client_rng)
    return point


def iter_proxyrack(count: int, rng: SeededRng,
                   interception_count: int = 17,
                   hijacked_router_count: int = 12,
                   start: int = 0,
                   stop: Optional[int] = None
                   ) -> Iterator[VantagePoint]:
    """Stream a window of the ProxyRack population without building the
    rest — cost is proportional to the window, not to ``start``."""
    stop = count if stop is None else min(stop, count)
    if start >= stop:
        return
    intercept_slots = _spread_indices(count, interception_count, rng,
                                      "intercept")
    hijack_slots = _spread_indices(count, hijacked_router_count, rng,
                                   "hijack")
    for index in range(start, stop):
        yield proxyrack_point(index, rng, intercept_slots, hijack_slots)


def build_proxyrack(count: int, rng: SeededRng,
                    interception_count: int = 17,
                    hijacked_router_count: int = 12) -> List[VantagePoint]:
    """Build the global residential proxy population."""
    return list(iter_proxyrack(count, rng,
                               interception_count=interception_count,
                               hijacked_router_count=hijacked_router_count))


def _attach_interceptor(point: VantagePoint, rng: SeededRng) -> None:
    profile_index = rng.randint(0, len(INTERCEPTOR_PROFILES) - 1)
    cn, vendor, ports = INTERCEPTOR_PROFILES[profile_index]
    # Three of the 17 intercepted clients in the paper only intercept 443.
    if rng.chance(3.0 / 17.0):
        ports = (443,)
    ca = CertificateAuthority.root(cn, trusted=False)
    device = TlsInterceptor(f"tls-intercept-{point.env.label}", ca,
                            ports=ports, vendor=vendor)
    point.env.middleboxes.append(device)
    point.interceptor_cn = cn
    point.interceptor_ports = ports
    asn, as_name, _ = INTERCEPTED_AS_EXAMPLES[
        rng.randint(0, len(INTERCEPTED_AS_EXAMPLES) - 1)]
    point.env.asn = asn
    point.env.as_name = as_name


def _apply_route_penalties(env: ClientEnvironment, rng: SeededRng) -> None:
    """Country-specific routing quirks driving Finding 3.2.

    India: clear-text queries to 1.1.1.1 take a long detour, so DoH (on
    different addresses) beats clear text by ~100 ms. Indonesia: the DoT
    path to 1.1.1.1:853 is congested, raising DoT overhead.
    """
    if env.country_code == "IN":
        penalty = max(20.0, rng.gauss(97.0, 18.0))
        env.route_penalties[("1.1.1.1", 53)] = penalty
        env.route_penalties[("1.0.0.1", 53)] = penalty
    elif env.country_code == "ID":
        penalty = max(5.0, rng.gauss(36.0, 14.0))
        env.route_penalties[("1.1.1.1", 853)] = penalty


def _spread_indices(count: int, wanted: int, rng: SeededRng,
                    name: str) -> set:
    if wanted <= 0 or count <= 0:
        return set()
    wanted = min(wanted, count)
    return set(rng.fork(name).sample(range(count), wanted))


ZHIMA_ASES: Tuple[Tuple[int, str], ...] = (
    (4134, "Chinanet"),
    (4812, "China Telecom (Group)"),
    (4837, "China Unicom Backbone"),
    (17621, "China Unicom Shanghai"),
    (17622, "China Unicom Guangzhou"),
)


def zhima_point(index: int, rng: SeededRng,
                cloudflare_blackhole_rate: float = 0.151,
                google_do53_filter_rate: float = 0.011) -> VantagePoint:
    """Derive one Zhima endpoint — pure given (index, seed)."""
    client_rng = rng.fork(f"zh-{index}")
    env = ClientEnvironment.in_country(
        f"zhima-{index}", _client_address(client_rng, 600_000 + index),
        "CN", client_rng)
    asn, as_name = ZHIMA_ASES[index % len(ZHIMA_ASES)]
    env.asn, env.as_name = asn, as_name
    env.middleboxes.append(RandomDrop(
        "residual-loss", client_rng.fork("loss"),
        CENSORED_FLAKE_PROBABILITY))
    if client_rng.chance(cloudflare_blackhole_rate):
        # 1.1.1.1 is blackholed/squatted inside many Chinese networks;
        # every port is dead, so Do53 and DoT fail together while DoH
        # (other addresses) still works — the Table 4 Zhima column.
        env.middleboxes.append(PortFilter(
            "cn-1111-blackhole", RuleSet(blocked_ips={"1.1.1.1"}),
            action=Verdict.DROP))
    if client_rng.chance(google_do53_filter_rate):
        env.middleboxes.append(PortFilter(
            "cn-8888-filter",
            RuleSet(blocked_endpoints={("8.8.8.8", 53)}),
            action=Verdict.DROP))
    return VantagePoint(
        env=env, platform="zhima",
        remaining_uptime_s=client_rng.uniform(30.0, 1800.0))


def iter_zhima(count: int, rng: SeededRng,
               cloudflare_blackhole_rate: float = 0.151,
               google_do53_filter_rate: float = 0.011,
               start: int = 0,
               stop: Optional[int] = None) -> Iterator[VantagePoint]:
    """Stream a window of the Zhima population (see iter_proxyrack)."""
    stop = count if stop is None else min(stop, count)
    for index in range(start, stop):
        yield zhima_point(index, rng,
                          cloudflare_blackhole_rate=cloudflare_blackhole_rate,
                          google_do53_filter_rate=google_do53_filter_rate)


def build_zhima(count: int, rng: SeededRng,
                cloudflare_blackhole_rate: float = 0.151,
                google_do53_filter_rate: float = 0.011) -> List[VantagePoint]:
    """Build the censored-network population (all endpoints in China)."""
    return list(iter_zhima(
        count, rng,
        cloudflare_blackhole_rate=cloudflare_blackhole_rate,
        google_do53_filter_rate=google_do53_filter_rate))


@dataclass
class AtlasProbe:
    """A RIPE-Atlas-style probe with its ISP's local resolver."""

    env: ClientEnvironment
    local_resolver_ip: str
    #: True when the local resolver is a well-known public service
    #: (excluded from the local-resolver analysis, as in footnote 1).
    uses_public_resolver: bool = False


def build_atlas_probes(count: int, rng: SeededRng,
                       dot_capable_rate: float = 24.0 / 6655.0,
                       public_resolver_rate: float = 0.12
                       ) -> Tuple[List[AtlasProbe], List[str]]:
    """Atlas probes plus the list of local resolver IPs that need hosts.

    Returns ``(probes, dot_capable_ips)``; the scenario builds local
    resolver hosts for every probe and enables DoT only on the capable
    ones.
    """
    probes: List[AtlasProbe] = []
    dot_capable: List[str] = []
    for index in range(count):
        client_rng = rng.fork(f"atlas-{index}")
        code = _sample_country(client_rng)
        env = ClientEnvironment.in_country(
            f"atlas-{index}", _client_address(client_rng, 900_000 + index),
            code, client_rng)
        if client_rng.chance(public_resolver_rate):
            probes.append(AtlasProbe(env, "8.8.8.8",
                                     uses_public_resolver=True))
            continue
        resolver_ip = _client_address(client_rng, 950_000 + index)
        capable = client_rng.chance(dot_capable_rate)
        if capable:
            dot_capable.append(resolver_ip)
        probes.append(AtlasProbe(env, resolver_ip))
    return probes, dot_capable
