"""Ablation: connection reuse — the paper's central performance claim.

RFC 7858 requires clients and servers to reuse connections whenever
possible; the paper's methodology treats reuse as "the major scenario".
This ablation quantifies why: the same vantage, resolver and query mix,
with reuse on vs off, across near and far vantages.
"""

from repro.core.client.performance import PerformanceStudy
from repro.netsim.network import ClientEnvironment


def _overheads(suite, reuse: bool, country: str, queries: int = 40):
    study = PerformanceStudy(suite.scenario)
    env = ClientEnvironment.in_country(
        f"ablate-{country}-{reuse}", "172.104.9.9", country,
        suite.scenario.rng.fork(f"ablate-{country}-{reuse}"))
    if reuse:
        from repro.world.population import VantagePoint
        point = VantagePoint(env=env, platform="controlled",
                             remaining_uptime_s=10_000.0)
        timing = study.measure_endpoint(point, queries=queries)
        assert timing is not None
        return timing.dot_overhead_ms
    result = study.measure_no_reuse(env, queries=queries)
    return result.dot_overhead_ms


def test_connection_reuse_ablation(benchmark, suite):
    def run():
        return {
            (country, reuse): _overheads(suite, reuse, country)
            for country in ("NL", "AU")
            for reuse in (True, False)
        }

    overheads = benchmark.pedantic(run, rounds=1, iterations=1)
    # With reuse the DoT overhead is single-digit milliseconds anywhere;
    # without reuse it grows with distance and reaches hundreds of ms.
    assert abs(overheads[("NL", True)]) < 20
    assert abs(overheads[("AU", True)]) < 20
    assert overheads[("NL", False)] > overheads[("NL", True)]
    assert overheads[("AU", False)] > 100
    amortisation = overheads[("AU", False)] / max(
        1.0, abs(overheads[("AU", True)]))
    print()
    for (country, reuse), value in sorted(overheads.items()):
        mode = "reused" if reuse else "fresh "
        print(f"  {country} {mode}: DoT overhead {value:+8.1f} ms")
    print(f"  reuse amortises the far-vantage overhead ~{amortisation:.0f}x")
