"""Table 2: top countries of open DoT resolvers, Feb 1 vs May 1 2019."""

from repro.analysis import tables

#: The paper's printed Table 2: counts and growth for all ten
#: countries. Growth strings truncate toward zero, the paper's
#: convention (see ``tables._growth_percent``).
PAPER_TABLE2 = {
    "IE": (456, 951, "+108%"),
    "CN": (257, 40, "-84%"),
    "US": (100, 531, "+431%"),
    "DE": (71, 86, "+21%"),
    "FR": (59, 56, "-5%"),
    "JP": (34, 27, "-20%"),
    "NL": (30, 36, "+20%"),
    "GB": (25, 21, "-16%"),
    "BR": (22, 49, "+122%"),
    "RU": (17, 40, "+135%"),
}


def test_table2(benchmark, campaign):
    rows = benchmark(tables.table2_rows, campaign)
    measured = {code: (first, last,
                       f"{tables._growth_percent(first, last):+d}%")
                for code, first, last, _ in rows}
    assert measured == PAPER_TABLE2
    print()
    print(tables.table2_text(campaign))
