"""Table 2: top countries of open DoT resolvers, Feb 1 vs May 1 2019."""

from repro.analysis import tables


def test_table2(benchmark, campaign):
    rows = benchmark(tables.table2_rows, campaign)
    counts = {code: (first, last) for code, first, last, _ in rows}
    growth = {code: pct for code, _, _, pct in rows}
    # Paper: IE 456->951 (+108%), CN 257->40 (-84%), US 100->531 (+431%).
    assert abs(counts["IE"][0] - 456) <= 3
    assert abs(counts["IE"][1] - 951) <= 3
    assert abs(counts["US"][1] - 531) <= 3
    assert growth["IE"] > 90
    assert growth["CN"] < -75
    assert growth["US"] > 350
    print()
    print(tables.table2_text(campaign))
