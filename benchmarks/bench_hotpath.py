#!/usr/bin/env python
"""Hot-path micro-benchmarks — the perf trajectory later PRs measure against.

Times the three operations the profiling pass optimised (DNS cache
get/put with telemetry, DNS wire-message encoding, certificate-chain
validation) plus one full scan-campaign round, serial and sharded, and
writes the results to ``BENCH_HOTPATH.json`` next to this file.

The ``BASELINE`` constant records the same workloads measured on the
tree *before* the hot-path pass (bound metric handles + memo caches)
landed, so the JSON carries its own before/after comparison. Throughput
regressions against the recorded baseline print warnings but never fail
the run — machine-to-machine variance makes a hard gate on ops/sec
meaningless. ``scripts/check.sh`` gates only on this script exiting
cleanly.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--workers 4]
        [--skip-campaign] [--out benchmarks/BENCH_HOTPATH.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro import telemetry
from repro.core.parallel import ParallelConfig
from repro.core.scan.campaign import ScanCampaign
from repro.dnswire.builder import make_query, make_response
from repro.dnswire.message import Message
from repro.dnswire.names import DnsName
from repro.dnswire.rdtypes import RRType
from repro.dnswire.records import ResourceRecord
from repro.resolvers.cache import DnsCache
from repro.tlssim.certs import (
    CaStore,
    CertificateAuthority,
    make_chain,
    validate_chain,
)
from repro.world.scenario import ScenarioConfig, build_scenario

#: Ops/sec measured on the pre-optimisation tree (commit 2dab2e3, the
#: parent of the hot-path pass), same workloads, same machine class as
#: CI. The speedup_vs_baseline section of the JSON is current / these.
BASELINE = {
    "cache": 224997.8,
    "codec": 26500.7,
    "cert_validate": 233490.7,
    "campaign_round_serial_s": 1.031,
}

#: Warn when a micro-benchmark drops below this fraction of baseline.
WARN_FRACTION = 0.5


def _best_ops_per_s(fn, ops_per_call: int, repeats: int = 3,
                    target_s: float = 0.25) -> float:
    """Best-of-N throughput; calibrates the loop to ``target_s``."""
    calls = 1
    while True:
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        elapsed = time.perf_counter() - start
        if elapsed >= target_s / 4 or calls >= 1 << 20:
            break
        calls *= 4
    best = elapsed / calls
    for _ in range(repeats - 1):
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / calls)
    return ops_per_call / best


# -- cache: DnsCache get/put driving the resolver.cache.* counters ---------


def bench_cache() -> float:
    telemetry.reset_registry()
    cache = DnsCache(max_entries=256)
    names = [DnsName.from_text(f"host-{index}.example.com")
             for index in range(64)]
    records = {name: (ResourceRecord.a(name, "192.0.2.1", ttl=300),)
               for name in names}
    for name in names:
        cache.put(name, RRType.A, records[name], 0, now=0.0)

    def run():
        for name in names:
            cache.get(name, RRType.A, now=1.0)
        cache.get(names[0], RRType.A, now=10_000.0)  # expired path
        cache.put(names[0], RRType.A, records[names[0]], 0, now=1.0)

    return _best_ops_per_s(run, ops_per_call=len(names) + 2)


# -- codec: wire-encoding one realistic response ---------------------------


def bench_codec() -> float:
    name = DnsName.from_text("probe.dnssec-test.example.com")
    query = make_query(name, RRType.A, msg_id=4321)
    response = make_response(
        query,
        answers=(ResourceRecord.a(name, "203.0.113.7", ttl=60),
                 ResourceRecord.a(name, "203.0.113.8", ttl=60)),
        authoritative=True)

    def run():
        query.encode()
        response.encode()

    return _best_ops_per_s(run, ops_per_call=2)


# -- cert-validate: one trusted chain, one broken chain --------------------


def bench_cert_validate() -> float:
    root = CertificateAuthority.root("Bench Root CA")
    intermediate = root.intermediate("Bench Intermediate CA")
    store = CaStore()
    store.trust(root)
    good = make_chain(intermediate, "dns.bench.example",
                      "2019-01-01", "2020-01-01")
    expired = make_chain(intermediate, "old.bench.example",
                         "2017-01-01", "2018-01-01")
    now = 1. * 1_556_668_800  # 2019-05-01

    def run():
        validate_chain(good, store, now)
        validate_chain(expired, store, now)

    return _best_ops_per_s(run, ops_per_call=2)


# -- campaign round: the end-to-end hot loop -------------------------------


def bench_campaign_round(workers: int) -> dict:
    results = {}
    for label, parallel in (
            ("serial", None),
            (f"workers{workers}",
             ParallelConfig(workers=workers, shards=8))):
        telemetry.reset_registry()
        scenario = build_scenario(ScenarioConfig.small())
        campaign = ScanCampaign(scenario, parallel=parallel)
        start = time.perf_counter()
        round_result = campaign.run_round(0)
        elapsed = time.perf_counter() - start
        results[label] = {
            "seconds": round(elapsed, 3),
            "probed": round_result.stats.probed,
            "probes_per_s": round(round_result.stats.probed / elapsed, 1),
        }
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4,
                        help="worker count for the sharded campaign round")
    parser.add_argument("--skip-campaign", action="store_true",
                        help="micro-benchmarks only (fast CI gate)")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "BENCH_HOTPATH.json"))
    args = parser.parse_args(argv)

    current = {
        "cache": round(bench_cache(), 1),
        "codec": round(bench_codec(), 1),
        "cert_validate": round(bench_cert_validate(), 1),
    }
    if not args.skip_campaign:
        current["campaign_round"] = bench_campaign_round(args.workers)

    speedup = {key: round(current[key] / BASELINE[key], 2)
               for key in ("cache", "codec", "cert_validate")}
    if "campaign_round" in current:
        serial_s = current["campaign_round"]["serial"]["seconds"]
        speedup["campaign_round_serial"] = round(
            BASELINE["campaign_round_serial_s"] / serial_s, 2)

    document = {
        "generated_by": "benchmarks/bench_hotpath.py",
        "workers": args.workers,
        "units": "ops_per_s (campaign_round: seconds per round)",
        "baseline": BASELINE,
        "current": current,
        "speedup_vs_baseline": speedup,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(json.dumps(document, indent=2, sort_keys=True))
    for key in ("cache", "codec", "cert_validate"):
        if current[key] < BASELINE[key] * WARN_FRACTION:
            print(f"WARNING: {key} at {current[key]:.0f} ops/s is below "
                  f"{WARN_FRACTION:.0%} of the recorded baseline "
                  f"({BASELINE[key]:.0f} ops/s)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
