"""Ablation: EDNS(0) padding vs traffic-analysis resistance.

The comparative study grades protocols on resisting traffic analysis;
padding (RFC 7830) is the mechanism. This ablation measures how query
*lengths* collapse into buckets as the padding block grows — the
quantity an on-path observer of DoT ciphertext sizes would exploit.
"""

from repro.dnswire import DnsName, RRType, make_query
from repro.netsim.rand import SeededRng


def _query_lengths(pad_block):
    rng = SeededRng(7, "padding-ablation")
    lengths = set()
    for index in range(300):
        label = rng.token(rng.randint(4, 30))
        name = DnsName.from_text(f"{label}.example.com")
        query = make_query(name, RRType.A, msg_id=index,
                           pad_block=pad_block)
        lengths.add(len(query.encode()))
    return lengths


def test_padding_ablation(benchmark):
    def run():
        return {block: _query_lengths(block)
                for block in (None, 32, 64, 128, 468)}

    distinct = benchmark.pedantic(run, rounds=1, iterations=1)
    # Unpadded queries leak the name length almost 1:1; each doubling of
    # the block collapses more queries into indistinguishable buckets,
    # and RFC 8467's recommended 468-octet block leaves a single bucket.
    assert len(distinct[None]) > 20
    assert len(distinct[32]) < len(distinct[None])
    assert len(distinct[128]) <= 2
    assert len(distinct[468]) == 1
    print()
    for block, lengths in distinct.items():
        label = "unpadded" if block is None else f"block={block}"
        print(f"  {label:10s} -> {len(lengths):3d} distinct wire sizes")
