"""Figure 12: DoT traffic per client /24 — share vs active time."""

from repro.analysis import figures


def test_fig12(benchmark, netflow):
    _, report = netflow
    points = benchmark(figures.figure12_points, report)
    # Paper: 5,623 /24s; top 5 carry 44% and top 20 carry 60% of the
    # traffic; 96% of netblocks are active under a week with 25%.
    assert len(points) > 4_500
    assert 0.35 < report.top_share(5) < 0.55
    assert 0.50 < report.top_share(20) < 0.72
    blocks_under_week, traffic_under_week = report.short_lived_stats()
    assert blocks_under_week > 0.90
    assert 0.15 < traffic_under_week < 0.35
    print()
    print(f"  netblocks: {len(points):,}; top5 {report.top_share(5):.0%}, "
          f"top20 {report.top_share(20):.0%}; "
          f"short-lived {blocks_under_week:.0%} of blocks / "
          f"{traffic_under_week:.0%} of traffic")
