"""Shared state for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper. The
heavy measurement campaigns run once per session in the fixtures below
(at ``ScenarioConfig.small()`` scale — 2% of the vantage population,
full resolver world); the benchmarked callable is the analysis that
turns raw measurements into the published artefact, and every benchmark
asserts the paper-shape calibration targets recorded in EXPERIMENTS.md.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.analysis.report import ExperimentSuite
from repro.world.scenario import ScenarioConfig


@pytest.fixture(scope="session")
def suite() -> ExperimentSuite:
    return ExperimentSuite.build(ScenarioConfig.small())


@pytest.fixture(scope="session")
def campaign(suite):
    return suite.campaign()


@pytest.fixture(scope="session")
def reachability(suite):
    return suite.reachability()


@pytest.fixture(scope="session")
def performance(suite):
    return suite.performance()


@pytest.fixture(scope="session")
def netflow(suite):
    return suite.netflow_report()
