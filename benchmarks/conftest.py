"""Shared state for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper. The
heavy measurement campaigns run once per session in the fixtures below
(at ``ScenarioConfig.small()`` scale — 2% of the vantage population,
full resolver world); the benchmarked callable is the analysis that
turns raw measurements into the published artefact, and every benchmark
asserts the paper-shape calibration targets recorded in EXPERIMENTS.md.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.report import ExperimentSuite
from repro.world.scenario import ScenarioConfig


def pytest_addoption(parser):
    parser.addoption(
        "--workers", action="store", type=int, default=4,
        help="worker-process count the parallel benches run at "
             "(serial-vs-parallel pairs land in BENCH_PARALLEL.json)")


@pytest.fixture(scope="session")
def bench_workers(request) -> int:
    return max(1, int(request.config.getoption("--workers")))


@pytest.fixture(scope="session")
def parallel_pairs():
    """Collects serial-vs-parallel wall-clock pairs; written at session
    end to BENCH_PARALLEL.json so the perf trajectory is measurable."""
    pairs = {}
    yield pairs
    if not pairs:
        return
    path = os.path.join(os.path.dirname(__file__), "BENCH_PARALLEL.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(pairs, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture(scope="session")
def suite() -> ExperimentSuite:
    return ExperimentSuite.build(ScenarioConfig.small())


@pytest.fixture(scope="session")
def campaign(suite):
    return suite.campaign()


@pytest.fixture(scope="session")
def reachability(suite):
    return suite.reachability()


@pytest.fixture(scope="session")
def performance(suite):
    return suite.performance()


@pytest.fixture(scope="session")
def netflow(suite):
    return suite.netflow_report()


# -- telemetry bridge ---------------------------------------------------------
#
# Benchmark timings flow into the telemetry registry too, so the
# BENCH_TELEMETRY.json snapshot written at session end and the
# pytest-benchmark JSON agree on what was measured (same runs, same
# numbers, two serialisations).

import os

from repro import telemetry


@pytest.fixture(scope="session", autouse=True)
def _telemetry_session():
    """One clean registry per benchmark session, snapshotted at the end."""
    registry, _ = telemetry.reset_registry()
    yield registry
    if not len(registry):
        return
    path = os.path.join(os.path.dirname(__file__), "BENCH_TELEMETRY.json")
    telemetry.write_snapshot(path, registry, telemetry.get_tracer(),
                             deterministic=False)


@pytest.fixture(autouse=True)
def _record_benchmark_timing(request, _telemetry_session):
    """After each bench, mirror its timing stats into the registry."""
    yield
    fixture = getattr(request.node, "funcargs", {}).get("benchmark")
    stats = getattr(getattr(fixture, "stats", None), "stats", None)
    if stats is None or not getattr(stats, "data", None):
        return
    histogram = _telemetry_session.histogram("bench.round_time_s",
                                             benchmark=request.node.name)
    for seconds in stats.data:
        histogram.observe(seconds)
