#!/usr/bin/env python
"""The four-protocol benchmark — E-DoH probe efficiency plus
eager/lazy table determinism.

Runs three deterministic legs over a small scenario and records a
document with **no machine-dependent fields**, so the committed
``BENCH_FOURPROTO.json`` can be byte-compared against a regeneration
under any ``PYTHONHASHSEED``:

* **E-DoH discovery** — one naive DoH scan and one probe-efficient
  (bootstrap-precheck + template-inference + early-abort) scan over the
  same URL corpus; the gate asserts the efficient mode confirms the
  *identical* endpoint set with *strictly fewer* probes.
* **Four-protocol tables** — the full Do53/DoT/DoH/DoQ + DNSCrypt
  battery under an eager and a lazy world; the gate asserts the
  rendered tables hash identically.
* **Protocol sweeps** — the UDP 784 (DoQ) and UDP 443 (DNSCrypt)
  discovery scans; the gate asserts both find their placed services.

Usage::

    PYTHONPATH=src python benchmarks/bench_fourproto.py [--seed 2019]
        [--out benchmarks/BENCH_FOURPROTO.json]
        [--validate PATH]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys

#: Vantage down-sample for the table legs (full batteries are the
#: pipeline's job; the bench only needs every cell populated).
SAMPLE = 0.25

SCHEMA_KEYS = ("schema", "seed", "edoh", "fourproto", "sweeps")
EDOH_KEYS = ("candidates", "naive_probes", "efficient_probes",
             "skipped_unresolvable", "skipped_early_abort", "confirmed",
             "confirmed_hosts", "naive_probes_per_confirmed",
             "efficient_probes_per_confirmed")
FOURPROTO_KEYS = ("eager_table_sha256", "lazy_table_sha256",
                  "handshake_sha256", "timings", "fallbacks")
SWEEP_KEYS = ("doq_addresses", "dnscrypt_addresses")


def _config(seed: int, world_mode: str = "eager"):
    from repro.world.scenario import ScenarioConfig
    return ScenarioConfig(
        seed=seed,
        vantage_scale=0.006,
        background_sample_size=40,
        url_dataset_noise=500,
        intercepted_clients=4,
        hijacked_routers=2,
        world_mode=world_mode,
    )


def _doh_discovery(scenario):
    from repro.core.scan.doh_scan import DohDiscovery
    return DohDiscovery(
        scenario.client_network(),
        scenario.rng.fork("campaign").fork("doh"),
        scenario.trust_store, scenario.bootstrap, scenario.probe_origin,
        scenario.expected_probe_answer(),
        public_list=scenario.public_doh_list(),
        retry_policy=scenario.retry_policy(op="doh.probe"))


def _measure_edoh(seed: int) -> dict:
    """Naive vs probe-efficient discovery over identical corpora."""
    from repro.world.scenario import build_scenario

    naive_scenario = build_scenario(_config(seed))
    naive_records = _doh_discovery(naive_scenario).discover(
        naive_scenario.url_dataset())
    naive_hosts = sorted({record.hostname for record in naive_records
                          if record.is_doh})

    efficient_scenario = build_scenario(_config(seed))
    efficient_records, stats = _doh_discovery(
        efficient_scenario).discover_efficient(
        efficient_scenario.url_dataset())
    efficient_hosts = sorted({record.hostname
                              for record in efficient_records
                              if record.is_doh})
    if efficient_hosts != naive_hosts:
        raise AssertionError(
            f"E-DoH confirmed {efficient_hosts} but the naive scan "
            f"confirmed {naive_hosts}")
    naive_probes = len(naive_records)
    return {
        "candidates": stats.candidates,
        "naive_probes": naive_probes,
        "efficient_probes": stats.probed,
        "skipped_unresolvable": stats.skipped_unresolvable,
        "skipped_early_abort": stats.skipped_early_abort,
        "confirmed": stats.confirmed,
        "confirmed_hosts": naive_hosts,
        "naive_probes_per_confirmed": round(
            naive_probes / max(1, len(naive_hosts)), 4),
        "efficient_probes_per_confirmed": round(
            stats.probes_per_confirmed, 4),
    }


def _measure_tables(seed: int) -> dict:
    """The full battery under eager and lazy worlds, hashed."""
    from repro.analysis import tables
    from repro.core.client.fourproto import FourProtoStudy
    from repro.core.client.reachability import platform_points
    from repro.world.scenario import build_scenario

    digests = {}
    handshake_digest = ""
    timings = fallbacks = 0
    for mode in ("eager", "lazy"):
        scenario = build_scenario(_config(seed, world_mode=mode))
        study = FourProtoStudy(scenario)
        report = study.run(platform_points(scenario, "proxyrack", SAMPLE))
        table = tables.fourproto_table_text(report)
        digests[mode] = hashlib.sha256(table.encode()).hexdigest()
        handshake_digest = hashlib.sha256(
            tables.handshake_table_text(report).encode()).hexdigest()
        timings = len(report.timings)
        fallbacks = report.fallbacks
    return {
        "eager_table_sha256": digests["eager"],
        "lazy_table_sha256": digests["lazy"],
        "handshake_sha256": handshake_digest,
        "timings": timings,
        "fallbacks": fallbacks,
    }


def _measure_sweeps(seed: int) -> dict:
    """DoQ and DNSCrypt discovery over the placed services."""
    from repro.core.scan.dnscrypt_scan import DnscryptScanner
    from repro.core.scan.doq_scan import DoqScanner
    from repro.netsim.rand import SeededRng
    from repro.world.scenario import build_scenario

    scenario = build_scenario(_config(seed))
    network = scenario.client_network()
    doq_records, _ = DoqScanner(
        network, SeededRng(seed).fork("bench-doq"), scenario.trust_store,
        scenario.probe_origin, scenario.expected_probe_answer()).discover()
    dnscrypt_records, _ = DnscryptScanner(
        network, SeededRng(seed).fork("bench-dnscrypt"),
        scenario.probe_origin, scenario.expected_probe_answer()).discover()
    return {
        "doq_addresses": sorted(record.address for record in doq_records
                                if record.is_doq),
        "dnscrypt_addresses": sorted(record.address
                                     for record in dnscrypt_records
                                     if record.is_dnscrypt),
    }


def run_bench(seed: int) -> dict:
    return {
        "schema": "bench-fourproto/1",
        "seed": seed,
        "edoh": _measure_edoh(seed),
        "fourproto": _measure_tables(seed),
        "sweeps": _measure_sweeps(seed),
    }


def validate_document(document: dict) -> None:
    """Raise ValueError when the document fails the four-proto gate."""
    for key in SCHEMA_KEYS:
        if key not in document:
            raise ValueError(f"missing key {key!r}")
    if document["schema"] != "bench-fourproto/1":
        raise ValueError(f"unknown schema {document['schema']!r}")
    edoh = document["edoh"]
    for key in EDOH_KEYS:
        if key not in edoh:
            raise ValueError(f"edoh record missing {key!r}")
    if edoh["confirmed"] <= 0 or not edoh["confirmed_hosts"]:
        raise ValueError("discovery confirmed no DoH endpoints")
    if edoh["confirmed"] != len(edoh["confirmed_hosts"]):
        raise ValueError("confirmed count does not match the host list")
    if edoh["efficient_probes"] >= edoh["naive_probes"]:
        raise ValueError(
            f"E-DoH probed {edoh['efficient_probes']} candidates, not "
            f"strictly fewer than the naive {edoh['naive_probes']}")
    if (edoh["efficient_probes"] + edoh["skipped_unresolvable"]
            + edoh["skipped_early_abort"]) != edoh["candidates"]:
        raise ValueError("E-DoH probe accounting does not add up")
    if edoh["efficient_probes_per_confirmed"] >= \
            edoh["naive_probes_per_confirmed"]:
        raise ValueError("E-DoH probes-per-confirmed-endpoint did not "
                         "beat the naive scan")
    fourproto = document["fourproto"]
    for key in FOURPROTO_KEYS:
        if key not in fourproto:
            raise ValueError(f"fourproto record missing {key!r}")
    if fourproto["eager_table_sha256"] != fourproto["lazy_table_sha256"]:
        raise ValueError("four-protocol table differs between eager and "
                         "lazy worlds")
    if fourproto["timings"] <= 0:
        raise ValueError("four-protocol battery produced no timings")
    sweeps = document["sweeps"]
    for key in SWEEP_KEYS:
        if key not in sweeps:
            raise ValueError(f"sweeps record missing {key!r}")
    if not sweeps["doq_addresses"]:
        raise ValueError("DoQ sweep found no resolvers")
    if not sweeps["dnscrypt_addresses"]:
        raise ValueError("DNSCrypt sweep found no resolvers")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=2019,
                        help="scenario seed (default: 2019)")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "BENCH_FOURPROTO.json"))
    parser.add_argument("--validate", metavar="PATH", default=None,
                        help="validate an existing document and exit")
    args = parser.parse_args(argv)

    if args.validate is not None:
        try:
            with open(args.validate, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            validate_document(document)
        except (OSError, ValueError) as error:
            print(f"error: {args.validate}: {error}", file=sys.stderr)
            return 1
        print(f"{args.validate}: valid four-protocol benchmark document")
        return 0

    document = run_bench(args.seed)
    validate_document(document)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    edoh = document["edoh"]
    print(f"E-DoH: {edoh['efficient_probes']}/{edoh['naive_probes']} "
          f"probes for the same {edoh['confirmed']} endpoints "
          f"({edoh['efficient_probes_per_confirmed']:.2f} vs "
          f"{edoh['naive_probes_per_confirmed']:.2f} per confirmed)")
    print(f"tables: eager == lazy "
          f"({document['fourproto']['eager_table_sha256'][:12]}...), "
          f"{document['fourproto']['timings']} timings")
    print(f"sweeps: {len(document['sweeps']['doq_addresses'])} DoQ, "
          f"{len(document['sweeps']['dnscrypt_addresses'])} DNSCrypt "
          f"-> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
