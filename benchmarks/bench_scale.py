#!/usr/bin/env python
"""The scale benchmark — flat-memory streaming sweeps over a
procedural world.

Builds a lazy scenario twice — once with a ~10^4-address background
space, once with ~10^6 — and sweeps port 853 over each under
``tracemalloc``. The procedural world derives hosts on first touch and
the sweep streams open addresses, so peak traced memory must stay
essentially flat as the address space grows 100x: the document records
both peaks plus sweep throughput, and ``--validate`` (run by
``scripts/check.sh``) asserts

* the large space really covers >= 10^6 addresses,
* ``peak_bytes`` of the 10^6 sweep <= ``flatness_budget`` x the 10^4
  sweep's peak,
* the host LRU never exceeded its configured bound,
* open-address counts and probed totals are internally consistent.

Throughput (``addresses_per_sec``) is recorded but never asserted on —
machine variance — exactly like the other benchmark gates.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py [--seed 2019]
        [--out benchmarks/BENCH_SCALE.json]
        [--validate PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import tracemalloc

#: The sweep memory budget: the 10^6-address sweep may use at most this
#: multiple of the 10^4 sweep's peak (ISSUE 8 acceptance: 1.25x).
FLATNESS_BUDGET = 1.25

SMALL_SPACE = 10_000
LARGE_SPACE = 1_000_000

#: Background sample kept tiny so the explicit segment is the same for
#: both runs and the RangeSegment carries (space - sample) addresses.
SAMPLE_SIZE = 100

SCHEMA_KEYS = ("schema", "seed", "flatness_budget", "flatness_ratio",
               "sweeps")
SWEEP_KEYS = ("space", "address_count", "open_addresses", "probed",
              "peak_bytes", "wall_s", "addresses_per_sec",
              "host_cache_peak", "host_lru_size")


def _lazy_config(seed: int, space: int):
    from repro.world.scenario import ScenarioConfig
    return ScenarioConfig(
        seed=seed,
        scan_rounds=2,
        vantage_scale=0.005,
        background_sample_size=SAMPLE_SIZE,
        world_mode="lazy",
        world_scale=space / SAMPLE_SIZE,
        url_dataset_noise=1_000,
        intercepted_clients=2,
        hijacked_routers=1,
    )


def _measure_sweep(seed: int, space: int) -> dict:
    """Build a lazy scenario and sweep port 853 under tracemalloc."""
    from repro.core.scan.zmap import ZmapScanner
    from repro.world.scenario import build_scenario

    config = _lazy_config(seed, space)
    tracemalloc.start()
    started = time.perf_counter()
    scenario = build_scenario(config)
    network = scenario.network_for_round(0)
    scanner = ZmapScanner(network, scenario.rng.fork("zmap-0"),
                          background_total=scenario.background_open853(0))
    result = scanner.sweep(853, 0)
    wall_s = time.perf_counter() - started
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    address_count = network.address_count()
    if network.full_materialise_calls:
        raise AssertionError(
            "sweep hit the full-materialise path "
            f"({network.full_materialise_calls} calls)")
    return {
        "space": space,
        "address_count": address_count,
        "open_addresses": len(result.open_addresses),
        # An unsharded sweep probes the whole combined space.
        "probed": address_count,
        "peak_bytes": peak_bytes,
        "wall_s": round(wall_s, 4),
        "addresses_per_sec": round(address_count / wall_s, 1)
        if wall_s > 0 else 0.0,
        "host_cache_peak": network.host_cache_peak,
        "host_lru_size": network.host_cache_size,
    }


def run_bench(seed: int) -> dict:
    sweeps = [_measure_sweep(seed, SMALL_SPACE),
              _measure_sweep(seed, LARGE_SPACE)]
    ratio = sweeps[1]["peak_bytes"] / max(1, sweeps[0]["peak_bytes"])
    return {
        "schema": "bench-scale/1",
        "seed": seed,
        "flatness_budget": FLATNESS_BUDGET,
        "flatness_ratio": round(ratio, 4),
        "sweeps": sweeps,
    }


def validate_document(document: dict) -> None:
    """Raise ValueError when the document fails the scale gate."""
    for key in SCHEMA_KEYS:
        if key not in document:
            raise ValueError(f"missing key {key!r}")
    if document["schema"] != "bench-scale/1":
        raise ValueError(f"unknown schema {document['schema']!r}")
    sweeps = document["sweeps"]
    if not isinstance(sweeps, list) or len(sweeps) != 2:
        raise ValueError("sweeps must list exactly the small and "
                         "large runs")
    for sweep in sweeps:
        for key in SWEEP_KEYS:
            if key not in sweep:
                raise ValueError(f"sweep record missing {key!r}")
        if sweep["host_cache_peak"] > sweep["host_lru_size"]:
            raise ValueError(
                f"host LRU exceeded its bound: "
                f"{sweep['host_cache_peak']} > {sweep['host_lru_size']}")
        if sweep["open_addresses"] > sweep["probed"]:
            raise ValueError("more opens than probed addresses")
        if sweep["address_count"] < sweep["space"]:
            raise ValueError(
                f"address space smaller than requested: "
                f"{sweep['address_count']} < {sweep['space']}")
    small, large = sweeps
    if large["space"] < 1_000_000:
        raise ValueError("large sweep must cover >= 10^6 addresses")
    budget = float(document["flatness_budget"])
    ratio = large["peak_bytes"] / max(1, small["peak_bytes"])
    if ratio > budget:
        raise ValueError(
            f"memory not flat: 10^6 sweep used {ratio:.2f}x the 10^4 "
            f"sweep's peak (budget {budget}x)")
    recorded = float(document["flatness_ratio"])
    if abs(recorded - ratio) > 0.01:
        raise ValueError(
            f"flatness_ratio {recorded} does not match sweeps "
            f"({ratio:.4f})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=2019,
                        help="scenario seed (default: 2019)")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "BENCH_SCALE.json"))
    parser.add_argument("--validate", metavar="PATH", default=None,
                        help="validate an existing document and exit")
    args = parser.parse_args(argv)

    if args.validate is not None:
        try:
            with open(args.validate, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            validate_document(document)
        except (OSError, ValueError) as error:
            print(f"error: {args.validate}: {error}", file=sys.stderr)
            return 1
        print(f"{args.validate}: valid scale benchmark document")
        return 0

    document = run_bench(args.seed)
    validate_document(document)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    small, large = document["sweeps"]
    print(f"10^4 sweep: peak {small['peak_bytes'] / 1e6:.1f} MB, "
          f"{small['addresses_per_sec']:,.0f} addr/s")
    print(f"10^6 sweep: peak {large['peak_bytes'] / 1e6:.1f} MB, "
          f"{large['addresses_per_sec']:,.0f} addr/s")
    print(f"flatness ratio {document['flatness_ratio']:.3f} "
          f"(budget {FLATNESS_BUDGET}x) -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
