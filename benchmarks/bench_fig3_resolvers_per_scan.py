"""Figure 3: open DoT resolvers identified by each scan, by provider."""

from repro.analysis import figures


def test_fig3(benchmark, campaign):
    dates, series = benchmark(figures.figure3_series, campaign)
    assert len(dates) == len(campaign.rounds)
    totals = [sum(series[key][index] for key in series)
              for index in range(len(dates))]
    # Paper: "over 1.5K open DoT resolvers are discovered in each scan".
    assert all(total > 1_500 for total in totals)
    # Large providers dominate every round.
    top = max(series, key=lambda key: series[key][-1])
    assert top != "others"
    assert series[top][-1] > 0.25 * totals[-1]
    print()
    print(figures.series_text(
        "Figure 3: Open DoT resolvers per scan",
        {name: list(zip(dates, values)) for name, values in series.items()}))
