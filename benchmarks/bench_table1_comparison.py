"""Table 1: the 10-criteria comparison of five DoE protocols."""

from repro.analysis import tables
from repro.core.comparative import Grade, build_comparison_table


def test_table1(benchmark):
    rows = benchmark(build_comparison_table)
    assert len(rows) == 10
    grades = {(row.criterion, key): grade
              for row in rows for key, grade in row.grades.items()}
    # Paper: DoT/DoH standardized and widely supported; DoH hides in
    # HTTPS; DoH has no fallback; DNSCrypt uses non-standard crypto.
    assert grades[("Standardized by IETF", "dot")] is Grade.SATISFYING
    assert grades[("Standardized by IETF", "doh")] is Grade.SATISFYING
    assert grades[("Resists DNS traffic analysis", "doh")] is Grade.SATISFYING
    assert grades[("Provides fallback mechanism", "doh")] is Grade.NOT_SATISFYING
    assert grades[("Uses standard TLS", "dnscrypt")] is Grade.NOT_SATISFYING
    print()
    print(tables.table1_text())
