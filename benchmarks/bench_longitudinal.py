#!/usr/bin/env python
"""The longitudinal benchmark — a 100-round campaign with flat memory,
kill/resume byte-identity, and incremental==batch goldens.

Drives the :class:`repro.campaign.CampaignEngine` through four gates:

* **campaign** — the full N-round run (churn, certificate rotation and
  an adoption curve all enabled) completes and records its chained
  fragment digest;
* **resume** — the checkpoint is truncated after round *k* (simulating
  a kill between appends) and a fresh engine resumes it; the resumed
  run's digest must equal the uninterrupted run's byte-for-byte;
* **goldens** — the engine's fragment-folded artefacts (Table 2,
  Figure 3, Figure 4) hash identically to the batch
  :class:`~repro.core.scan.campaign.ScanCampaign` renderings at
  workers 1 and 4;
* **memory** — peak traced memory of a long run must stay within
  ``flatness_budget`` x a short run's peak (ISSUE 10 acceptance:
  50 rounds <= 1.25x of 5 rounds), proving per-round cache release
  actually keeps the engine flat.

Wall-clock figures are recorded but never asserted on — machine
variance — exactly like the other benchmark gates.

Usage::

    PYTHONPATH=src python benchmarks/bench_longitudinal.py [--seed 2019]
        [--quick] [--out benchmarks/BENCH_LONGITUDINAL.json]
        [--validate PATH] [--min-rounds N]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import shutil
import sys
import tempfile
import time
import tracemalloc

#: The long run may use at most this multiple of the short run's peak.
FLATNESS_BUDGET = 1.25

#: Full preset (the committed document).
FULL = {"campaign_rounds": 100, "kill_after_round": 49,
        "short_rounds": 5, "long_rounds": 50, "golden_rounds": 6}
#: Quick preset used by scripts/check.sh for the fresh-run gate.
QUICK = {"campaign_rounds": 10, "kill_after_round": 3,
         "short_rounds": 3, "long_rounds": 12, "golden_rounds": 4}

SCHEMA_KEYS = ("schema", "seed", "flatness_budget", "campaign",
               "resume", "goldens", "memory")


def _config(seed: int, rounds: int):
    """A tiny scenario with every longitudinal axis switched on."""
    from repro.world.scenario import ScenarioConfig
    return ScenarioConfig(
        seed=seed,
        scan_rounds=rounds,
        vantage_scale=0.006,
        background_sample_size=40,
        url_dataset_noise=500,
        intercepted_clients=4,
        hijacked_routers=2,
        churn_rate=0.05,
        cert_rotation_rounds=max(2, rounds // 10),
        adoption_curve="linear",
    )


def _artefact_sha(table2: str, figure3, figure4) -> str:
    digest = hashlib.sha256()
    digest.update(table2.encode("utf-8"))
    digest.update(repr(figure3).encode("utf-8"))
    digest.update(repr(figure4).encode("utf-8"))
    return digest.hexdigest()


def _engine(seed: int, rounds: int, workers=None, checkpoint=None):
    from repro.campaign import CampaignEngine
    from repro.core.parallel import ParallelConfig
    from repro.world.scenario import build_scenario
    parallel = (ParallelConfig(workers=workers)
                if workers is not None else None)
    return CampaignEngine(build_scenario(_config(seed, rounds)),
                          parallel=parallel, checkpoint_path=checkpoint)


def _measure_campaign(seed: int, rounds: int, kill_after: int,
                      workdir: str) -> tuple:
    """The full run (checkpointed) plus the kill/resume replay."""
    checkpoint = os.path.join(workdir, "campaign.jsonl")
    started = time.perf_counter()
    straight = _engine(seed, rounds, checkpoint=checkpoint).run(
        include_doh=False)
    wall_s = time.perf_counter() - started
    campaign = {
        "rounds": rounds,
        "digest": straight.digest,
        "final_resolvers": straight.accumulator.resolver_counts[-1],
        "wall_s": round(wall_s, 4),
        "rounds_per_sec": round(rounds / wall_s, 2) if wall_s > 0 else 0.0,
    }

    # Simulate a kill between checkpoint appends: keep the header plus
    # the first kill_after+1 round lines, then resume a fresh engine.
    with open(checkpoint, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    with open(checkpoint, "w", encoding="utf-8") as handle:
        handle.writelines(lines[:kill_after + 2])
    started = time.perf_counter()
    resumed = _engine(seed, rounds, checkpoint=checkpoint).run(
        include_doh=False, resume=True)
    resume = {
        "kill_after_round": kill_after,
        "restored_rounds": resumed.restored_rounds,
        "executed_rounds": resumed.executed_rounds,
        "digest": resumed.digest,
        "matches": resumed.digest == straight.digest,
        "wall_s": round(time.perf_counter() - started, 4),
    }
    return campaign, resume


def _measure_goldens(seed: int, rounds: int) -> dict:
    """Incremental (engine) vs batch (ScanCampaign) artefact hashes."""
    from repro.analysis import figures, tables
    from repro.core.scan.campaign import ScanCampaign
    from repro.world.scenario import build_scenario

    batch = ScanCampaign(build_scenario(_config(seed, rounds))).run(
        include_doh=False)
    batch_sha = _artefact_sha(tables.table2_text(batch),
                              figures.figure3_series(batch),
                              figures.figure4_series(batch))
    by_workers = {}
    for workers in (1, 4):
        summary = _engine(seed, rounds, workers=workers).run(
            include_doh=False)
        accumulator = summary.accumulator
        by_workers[str(workers)] = _artefact_sha(
            accumulator.table2_text(),
            accumulator.figure3_series(),
            accumulator.figure4_series())
    return {
        "rounds": rounds,
        "batch_sha256": batch_sha,
        "incremental_sha256": by_workers,
        "matches": all(sha == batch_sha for sha in by_workers.values()),
    }


def _measure_memory_run(seed: int, rounds: int) -> int:
    """Peak traced bytes for a rounds-long engine run."""
    tracemalloc.start()
    _engine(seed, rounds).run(include_doh=False)
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak_bytes


def run_bench(seed: int, preset: dict) -> dict:
    workdir = tempfile.mkdtemp(prefix="bench-longitudinal-")
    try:
        campaign, resume = _measure_campaign(
            seed, preset["campaign_rounds"], preset["kill_after_round"],
            workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    goldens = _measure_goldens(seed, preset["golden_rounds"])
    short_peak = _measure_memory_run(seed, preset["short_rounds"])
    long_peak = _measure_memory_run(seed, preset["long_rounds"])
    memory = {
        "short_rounds": preset["short_rounds"],
        "long_rounds": preset["long_rounds"],
        "short_peak_bytes": short_peak,
        "long_peak_bytes": long_peak,
        "flatness_ratio": round(long_peak / max(1, short_peak), 4),
    }
    return {
        "schema": "bench-longitudinal/1",
        "seed": seed,
        "flatness_budget": FLATNESS_BUDGET,
        "campaign": campaign,
        "resume": resume,
        "goldens": goldens,
        "memory": memory,
    }


def validate_document(document: dict, min_rounds: int = 5) -> None:
    """Raise ValueError when the document fails the longitudinal gate."""
    for key in SCHEMA_KEYS:
        if key not in document:
            raise ValueError(f"missing key {key!r}")
    if document["schema"] != "bench-longitudinal/1":
        raise ValueError(f"unknown schema {document['schema']!r}")

    campaign = document["campaign"]
    if campaign["rounds"] < min_rounds:
        raise ValueError(
            f"campaign covered only {campaign['rounds']} rounds "
            f"(need >= {min_rounds})")
    if not campaign["digest"]:
        raise ValueError("campaign recorded no fragment digest")

    resume = document["resume"]
    if not resume["matches"]:
        raise ValueError("resumed digest diverged from the straight run")
    if resume["digest"] != campaign["digest"]:
        raise ValueError(
            "resume.matches claims equality but the digests differ")
    expected = campaign["rounds"] - resume["restored_rounds"]
    if resume["executed_rounds"] != expected:
        raise ValueError(
            f"resume executed {resume['executed_rounds']} rounds, "
            f"expected {expected}")

    goldens = document["goldens"]
    if not goldens["matches"]:
        raise ValueError("incremental artefacts diverged from batch")
    for workers, sha in goldens["incremental_sha256"].items():
        if sha != goldens["batch_sha256"]:
            raise ValueError(
                f"goldens.matches claims equality but workers={workers} "
                f"hashed differently")

    memory = document["memory"]
    if memory["long_rounds"] < min_rounds:
        raise ValueError(
            f"memory gate covered only {memory['long_rounds']} rounds "
            f"(need >= {min_rounds})")
    if memory["long_rounds"] <= memory["short_rounds"]:
        raise ValueError("long memory run must exceed the short run")
    budget = float(document["flatness_budget"])
    ratio = (memory["long_peak_bytes"]
             / max(1, memory["short_peak_bytes"]))
    if ratio > budget:
        raise ValueError(
            f"memory not flat: {memory['long_rounds']}-round run used "
            f"{ratio:.2f}x the {memory['short_rounds']}-round peak "
            f"(budget {budget}x)")
    recorded = float(memory["flatness_ratio"])
    if abs(recorded - ratio) > 0.01:
        raise ValueError(
            f"flatness_ratio {recorded} does not match the recorded "
            f"peaks ({ratio:.4f})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=2019,
                        help="scenario seed (default: 2019)")
    parser.add_argument("--quick", action="store_true",
                        help="small preset for CI fresh-run gating")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "BENCH_LONGITUDINAL.json"))
    parser.add_argument("--validate", metavar="PATH", default=None,
                        help="validate an existing document and exit")
    parser.add_argument("--min-rounds", type=int, default=5,
                        help="round-count floor enforced by --validate")
    args = parser.parse_args(argv)

    if args.validate is not None:
        try:
            with open(args.validate, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            validate_document(document, min_rounds=args.min_rounds)
        except (OSError, ValueError, KeyError) as error:
            print(f"error: {args.validate}: {error}", file=sys.stderr)
            return 1
        print(f"{args.validate}: valid longitudinal benchmark document")
        return 0

    preset = QUICK if args.quick else FULL
    document = run_bench(args.seed, preset)
    validate_document(document, min_rounds=min(preset["campaign_rounds"],
                                               preset["long_rounds"]))
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    campaign = document["campaign"]
    memory = document["memory"]
    print(f"campaign: {campaign['rounds']} rounds in "
          f"{campaign['wall_s']:.1f}s "
          f"({campaign['rounds_per_sec']:.2f} rounds/s), digest "
          f"{campaign['digest'][:16]}...")
    print(f"resume: restored {document['resume']['restored_rounds']}, "
          f"executed {document['resume']['executed_rounds']}, "
          f"digest matches: {document['resume']['matches']}")
    print(f"goldens: incremental == batch at workers 1/4: "
          f"{document['goldens']['matches']}")
    print(f"memory: {memory['long_rounds']}-round peak "
          f"{memory['long_peak_bytes'] / 1e6:.1f} MB = "
          f"{memory['flatness_ratio']:.3f}x the "
          f"{memory['short_rounds']}-round peak "
          f"(budget {FLATNESS_BUDGET}x) -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
