"""Table 6: clients whose TLS sessions are intercepted and re-signed."""

from repro.analysis import tables


def test_table6(benchmark, reachability):
    rows = benchmark(tables.table6_rows, reachability)
    assert len(rows) == len(reachability.interceptions)
    assert rows, "expected intercepted clients in the population"
    # Finding 2.3: interception re-signs with an untrusted CA; the
    # opportunistic DoT lookup proceeds anyway (queries visible to the
    # interceptor), while strict DoH terminates.
    for case in reachability.interceptions:
        assert case.ca_common_name
        if case.intercepts_853:
            assert case.dot_lookup_succeeded
    # Some devices only inspect port 443 (3 of 17 in the paper).
    only_443 = [case for case in reachability.interceptions
                if case.intercepts_443 and not case.intercepts_853]
    assert len(only_443) < len(reachability.interceptions)
    print()
    print(tables.table6_text(reachability))
