"""Figure 11: monthly DoT flows to Cloudflare and Quad9 (NetFlow)."""

from repro.analysis import figures


def test_fig11(benchmark, netflow):
    _, report = netflow
    series = benchmark(figures.figure11_series, report)
    cloudflare = dict(series["cloudflare"])
    # Paper: +56% from Jul 2018 (4,674 flows) to Dec 2018 (7,318).
    growth = report.growth("cloudflare", "2018-07", "2018-12")
    assert 0.40 < growth < 0.75
    assert abs(cloudflare["2018-07"] - 4674) / 4674 < 0.15
    assert abs(cloudflare["2018-12"] - 7318) / 7318 < 0.15
    # Quad9 fluctuates rather than growing monotonically.
    quad9 = [count for _, count in series["quad9"]]
    diffs = [b - a for a, b in zip(quad9, quad9[1:])]
    assert any(d > 0 for d in diffs) and any(d < 0 for d in diffs)
    # DoT is 2-3 orders of magnitude below clear-text DNS.
    assert 100 < report.dot_to_do53_ratio("cloudflare") < 1000
    print()
    print(figures.series_text("Figure 11: monthly DoT flows", series))
