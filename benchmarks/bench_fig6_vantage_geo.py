"""Figure 6: geographic distribution of ProxyRack vantage points."""

from repro.analysis import figures


def test_fig6(benchmark, suite):
    network = suite.proxyrack_network()
    distribution = benchmark(figures.figure6_distribution, network)
    countries = dict(distribution)
    # Paper: endpoints in >150 countries at full scale; the simulation's
    # country table is smaller, but coverage must stay broad and the
    # heavy residential-proxy markets must lead.
    assert len(countries) > 30
    top10 = [code for code, _ in distribution[:10]]
    assert "US" in top10
    assert set(top10) & {"BR", "IN", "ID", "RU", "VN"}
    print()
    print("  Top countries:", ", ".join(
        f"{code}:{count}" for code, count in distribution[:12]))
