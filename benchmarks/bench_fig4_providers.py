"""Figure 4: providers of open DoT resolvers and certificate hygiene."""

from repro.analysis import figures
from repro.tlssim.certs import ValidationFailure


def test_fig4(benchmark, campaign):
    dates, providers, invalid, cdf = benchmark(figures.figure4_series,
                                               campaign)
    # Paper: ~25% of providers have >=1 resolver with an invalid cert,
    # and ~70% of providers run a single resolver address.
    final_fraction = invalid[-1] / providers[-1]
    assert 0.18 < final_fraction < 0.35
    singles = next(fraction for size, fraction in cdf if size == 1)
    assert 0.60 < singles < 0.82
    # Final-scan failure breakdown matches Finding 1.2 exactly.
    stats = campaign.last.provider_statistics()
    assert stats.invalid_cert_resolvers == 122
    assert stats.invalid_cert_providers == 62
    assert stats.failure_totals[ValidationFailure.EXPIRED] == 27
    assert stats.failure_totals[ValidationFailure.SELF_SIGNED] == 67
    assert stats.failure_totals[ValidationFailure.BROKEN_CHAIN] == 28
    print()
    for date, total, bad in zip(dates, providers, invalid):
        print(f"  {date}: {total:4d} providers, {bad:3d} invalid "
              f"({bad / total:.0%})")
