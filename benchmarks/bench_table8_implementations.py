"""Table 8 (Appendix A): the implementation survey."""

from repro.analysis import tables
from repro.doe.metadata import support_count


def test_table8(benchmark):
    rows = benchmark(tables.table8_rows)
    assert len(rows) > 30
    categories = {row[0] for row in rows}
    assert len(categories) == 5
    # Paper: DoT and DoH gained support quickly; DoT leads in server
    # software and OSes, DoH in browsers; DNSSEC remains the most
    # widely deployed of the surveyed features.
    assert support_count("dot") >= 14
    assert support_count("doh") >= 12
    assert support_count("dnssec") >= support_count("dnscrypt")
    print()
    print(tables.table8_text())
