#!/usr/bin/env python
"""The serving benchmark — sustained qps and tail latency per protocol.

Runs one single-protocol serving leg each for Do53, DoT and DoH (10k
queries through the full client → wire codec → frontend → cache →
backend path by default), an overload leg that must complete by
shedding rather than stalling, and a reproducibility check that two
same-seed runs serialize byte-identical scorecards. Results go to
``BENCH_SERVING.json`` next to this file.

``scripts/check.sh`` runs this with a small ``--queries`` as an
error-only gate: wall-clock qps is recorded but never asserted on
(machine variance), while the schema, the shed counters and the
byte-identity check are hard failures.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py [--queries 10000]
        [--qps 500] [--seed 2019] [--out benchmarks/BENCH_SERVING.json]
        [--validate PATH [--min-queries N]]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.serving import BenchConfig, run_serving_bench, validate_document


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--queries", type=int, default=10_000,
                        help="queries per protocol leg (default: 10000)")
    parser.add_argument("--qps", type=float, default=500.0,
                        help="offered rate per leg (default: 500)")
    parser.add_argument("--seed", type=int, default=2019,
                        help="world + workload seed (default: 2019)")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "BENCH_SERVING.json"))
    parser.add_argument("--validate", metavar="PATH", default=None,
                        help="validate an existing document and exit")
    parser.add_argument("--min-queries", type=int, default=None,
                        help="served floor for --validate (default: the "
                             "document's own queries_per_protocol)")
    args = parser.parse_args(argv)

    if args.validate is not None:
        try:
            with open(args.validate, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            validate_document(document, min_queries=args.min_queries)
        except (OSError, ValueError) as error:
            print(f"error: {args.validate}: {error}", file=sys.stderr)
            return 1
        print(f"{args.validate}: valid serving benchmark document")
        return 0

    config = BenchConfig(seed=args.seed,
                         queries_per_protocol=args.queries,
                         qps=args.qps)
    document = run_serving_bench(
        config, log=lambda text: print(text, file=sys.stderr))
    validate_document(document)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(document, indent=2, sort_keys=True))
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
