"""Ablation: Strict vs Opportunistic privacy profiles under interception.

Finding 2.3's mechanism, quantified: the same intercepted population
queried under both RFC 8310 profiles. Strict fails closed (privacy
preserved, availability lost); opportunistic keeps resolving while the
interceptor reads every query.
"""

from repro.dnswire import RRType, make_query
from repro.doe.dot import DotClient, PrivacyProfile
from repro.netsim.middlebox import TlsInterceptor
from repro.netsim.network import ClientEnvironment
from repro.tlssim import CertificateAuthority


def test_profile_ablation(benchmark, suite):
    scenario = suite.scenario
    network = scenario.client_network()

    def run():
        outcomes = {}
        for profile in (PrivacyProfile.STRICT,
                        PrivacyProfile.OPPORTUNISTIC):
            succeeded = exposed = 0
            for index in range(40):
                rng = scenario.rng.fork(f"profile-{profile.value}-{index}")
                ca = CertificateAuthority.root(f"DPI {index}",
                                               trusted=False)
                env = ClientEnvironment.in_country(
                    f"ablate-prof-{profile.value}-{index}",
                    "198.51.77.10", "US", rng.fork("env"),
                    middleboxes=[TlsInterceptor(f"dpi-{index}", ca)])
                client = DotClient(network, rng.fork("dot"),
                                   scenario.trust_store, profile=profile)
                query = make_query(scenario.probe_name(rng.token(8)),
                                   RRType.A, msg_id=index + 1)
                result = client.query(env, "1.1.1.1", query, reuse=False)
                if result.ok:
                    succeeded += 1
                    if result.intercepted_by:
                        exposed += 1
            outcomes[profile.value] = (succeeded, exposed)
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    strict_ok, strict_exposed = outcomes["strict"]
    opp_ok, opp_exposed = outcomes["opportunistic"]
    # Strict: zero lookups complete, zero queries exposed.
    assert strict_ok == 0 and strict_exposed == 0
    # Opportunistic: everything completes — and everything is exposed.
    assert opp_ok == 40 and opp_exposed == 40
    print()
    print(f"  strict:        {strict_ok}/40 lookups ok, "
          f"{strict_exposed} exposed to the interceptor")
    print(f"  opportunistic: {opp_ok}/40 lookups ok, "
          f"{opp_exposed} exposed to the interceptor")
