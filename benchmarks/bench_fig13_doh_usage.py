"""Figure 13: query volumes of popular DoH bootstrap domains."""

from repro.analysis import figures


def test_fig13(benchmark, suite):
    usage = suite.doh_usage()
    series = benchmark(figures.figure13_series, usage)
    # Paper: only 4 of 17 DoH domains exceed 10K lifetime lookups;
    # Google dominates by orders of magnitude; CleanBrowsing grows ~10x
    # from Sep 2018 (~200) to Mar 2019 (~1,915).
    assert len(usage.candidates) == 17
    assert len(usage.popular) == 4
    assert usage.dominant_domain() == "dns.google.com"
    assert usage.orders_of_magnitude_above_rest("dns.google.com") > 1.0
    growth = usage.growth("doh.cleanbrowsing.org", "2018-09", "2019-03")
    assert 9.0 < growth < 10.5
    cleanbrowsing = dict(series["doh.cleanbrowsing.org"])
    assert cleanbrowsing["2018-09"] == 200
    assert cleanbrowsing["2019-03"] == 1915
    print()
    for domain in usage.popular:
        print(f"  {domain:30s} lifetime {usage.totals[domain]:>12,}")
