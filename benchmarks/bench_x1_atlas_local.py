"""Section 3.1 extra: DoT support on ISP local resolvers (RIPE Atlas)."""

from repro.core.client import AtlasStudy


def test_x1_atlas(benchmark, suite):
    study = AtlasStudy(suite.scenario)
    result = benchmark.pedantic(study.run, rounds=1, iterations=1)
    # Paper: only 24 of 6,655 probes (0.3%) complete a DoT query to
    # their local resolver — ISP DoT deployment is scarce.
    assert result.attempted > 0
    assert result.success_rate < 0.05
    print()
    print(f"  probes: {result.total_probes}, excluded (public resolver): "
          f"{result.excluded_public}, attempted: {result.attempted}, "
          f"DoT-capable: {result.succeeded} "
          f"({result.success_rate:.2%})")
