"""Ablation: NetFlow packet-sampling rate vs trend recovery.

The usage study works on 1/3,000-sampled flows. This ablation checks
how robust the headline trend (Cloudflare DoT +56% Jul→Dec 2018) is to
the sampling rate, by re-sampling the same ground-truth flow population
through collectors at different rates.
"""

from repro.netsim.netflow import NetFlowCollector, PacketizedFlow
from repro.netsim.rand import SeededRng


def _ground_truth_flows(rng, month_counts):
    flows = []
    for month_index, count in enumerate(month_counts):
        for index in range(count):
            flows.append(PacketizedFlow(
                src_ip=f"115.{50 + index % 40}.{index % 200}.10",
                dst_ip="1.1.1.1", src_port=40_000 + index % 20_000,
                dst_port=853, protocol="tcp",
                data_packets=rng.randint(2, 12),
                avg_packet_octets=150,
                start_ts=month_index * 2_592_000.0 + index * 7.0,
                duration_s=20.0))
    return flows


def test_sampling_ablation(benchmark):
    rng = SeededRng(21, "sampling-ablation")
    # Ground truth: 40% growth between the two "months".
    flows = _ground_truth_flows(rng.fork("flows"), [5_000, 7_000])

    def run():
        recovered = {}
        for rate in (1.0, 1 / 10.0, 1 / 100.0, 1 / 1000.0):
            collector = NetFlowCollector(sampling_rate=rate,
                                         rng=rng.fork(f"c{rate}"))
            collector.observe_all(flows)
            months = [0, 0]
            for record in collector.export():
                months[int(record.start_ts // 2_592_000.0)] += 1
            recovered[rate] = (months[1] / months[0] - 1.0
                               if months[0] else None)
        return recovered

    recovered = benchmark.pedantic(run, rounds=1, iterations=1)
    # Down to 1/100 the +40% growth survives within a few points; at
    # 1/1000 the estimate gets noisy but the direction still holds —
    # which is why the paper can read trends out of 1/3000 sampling at
    # its (much larger) traffic volumes.
    assert abs(recovered[1.0] - 0.4) < 0.05
    assert abs(recovered[1 / 100.0] - 0.4) < 0.25
    assert recovered[1 / 1000.0] is None or recovered[1 / 1000.0] > -0.5
    print()
    for rate, growth in recovered.items():
        text = "n/a" if growth is None else f"{growth:+.0%}"
        print(f"  sampling 1/{1 / rate:>5.0f}: recovered growth {text} "
              f"(truth +40%)")
