"""Serial-vs-sharded wall clock for the scan campaign.

Unlike the artefact benches, this file measures the *execution layer*:
the same seeded campaign runs once on the historical serial path and
once sharded at ``--workers N`` (default 4), and the wall-clock pair is
recorded in ``BENCH_PARALLEL.json``. The pair is the perf trajectory
the ROADMAP's "fast as the hardware allows" goal is tracked against;
the speedup itself depends on the CI machine's core count, so the
bench records honest numbers rather than asserting a ratio.
"""

from __future__ import annotations

import time

from repro import telemetry
from repro.core.parallel import ParallelConfig
from repro.core.scan.campaign import ScanCampaign
from repro.world.scenario import ScenarioConfig, build_scenario

ROUNDS = 2
SEED = 23


def _config() -> ScenarioConfig:
    return ScenarioConfig(seed=SEED, vantage_scale=0.006,
                          background_sample_size=40, url_dataset_noise=500,
                          intercepted_clients=4, hijacked_routers=2)


def _timed_campaign(parallel):
    telemetry.reset_registry()
    try:
        scenario = build_scenario(_config())
        started = time.perf_counter()
        result = ScanCampaign(scenario, parallel=parallel).run(
            rounds=ROUNDS, include_doh=True)
        return time.perf_counter() - started, result
    finally:
        telemetry.reset_registry()


def test_campaign_serial_vs_parallel(bench_workers, parallel_pairs):
    serial_s, serial = _timed_campaign(None)
    shards = max(4, bench_workers)
    parallel_s, sharded = _timed_campaign(
        ParallelConfig(workers=bench_workers, shards=shards))
    parallel_pairs["campaign"] = {
        "rounds": ROUNDS,
        "seed": SEED,
        "workers": bench_workers,
        "shards": shards,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
    }
    # The sharded path re-partitions rng streams, so latencies differ
    # from the legacy serial run — but the discovered world must agree.
    assert ([len(r.resolvers) for r in sharded.rounds]
            == [len(r.resolvers) for r in serial.rounds])
    assert ({r.address for round_ in sharded.rounds
             for r in round_.resolvers}
            == {r.address for round_ in serial.rounds
                for r in round_.resolvers})
    assert len(sharded.doh_records) == len(serial.doh_records)
