#!/usr/bin/env python
"""Execution-layer benchmark: legacy vs persistent-pool sharded runs.

Unlike the artefact benches, this file measures the *execution layer*.
The same seeded campaign runs three times:

* **serial** — the historical unsharded path (no parallel layer at
  all), recorded as the honest reference point;
* **legacy** — sharded at ``--workers N`` through the pre-persistent
  executor: a fresh fork pool per dispatch, scenario worlds rebuilt in
  every child, telemetry shipped back as pickled object graphs;
* **persistent** — the same sharded run through the persistent worker
  pool with worker-side scenario caches and the compact wire format.

The headline ``speedup`` is ``legacy_s / parallel_s``: what the
persistent pool + wire format buy over the executor they replaced, at
the same worker count and shard plan. ``vs_serial`` records the
sharded-vs-serial ratio too; on many-core machines it exceeds 1, on a
single-core CI box the fork overhead keeps it below 1 and the adaptive
in-process threshold (bypassed here with ``min_fanout_items=0``) is
what protects real runs.

``validate_parallel_document`` is the schema + floor gate for the
committed ``BENCH_PARALLEL.json`` (mirroring the serving validator);
``scripts/check.sh`` runs it via ``--validate`` as an error-only gate
with the ISSUE's >= 2x speedup floor.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_campaign.py
        [--workers 4] [--out benchmarks/BENCH_PARALLEL.json]
        [--validate PATH [--min-speedup 2.0]]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro import telemetry
from repro.analysis import tables
from repro.core.parallel import (
    DEFAULT_SHARDS,
    ParallelConfig,
    shutdown_worker_pool,
)
from repro.core.scan.campaign import ScanCampaign
from repro.world.scenario import ScenarioConfig, build_scenario

ROUNDS = 2
SEED = 23

#: The gate floor for persistent-vs-legacy at 4 workers (ISSUE PR 7).
MIN_SPEEDUP = 2.0


def _config() -> ScenarioConfig:
    return ScenarioConfig(seed=SEED, vantage_scale=0.006,
                          background_sample_size=40, url_dataset_noise=500,
                          intercepted_clients=4, hijacked_routers=2)


def _timed_campaign(parallel):
    telemetry.reset_registry()
    try:
        scenario = build_scenario(_config())
        started = time.perf_counter()
        result = ScanCampaign(scenario, parallel=parallel).run(
            rounds=ROUNDS, include_doh=True)
        return time.perf_counter() - started, result
    finally:
        telemetry.reset_registry()


def _sharded_config(workers: int, shards: int,
                    legacy: bool) -> ParallelConfig:
    # oversubscribe so the measured pools genuinely fork at the
    # requested width even on small CI machines; min_fanout_items=0 so
    # every dispatch goes through the executor under measurement.
    return ParallelConfig(workers=workers, shards=shards,
                          min_fanout_items=0, oversubscribe=True,
                          legacy_executor=legacy)


def run_parallel_bench(workers: int = 4, log=lambda text: None) -> dict:
    """Run the three legs and return the BENCH_PARALLEL.json document.

    Asserts the execution-layer contract along the way: the legacy and
    persistent runs must produce byte-identical tables (they differ
    only in scheduling), and the sharded world must agree with the
    serial one on everything the shard plan does not re-partition.
    """
    shards = max(DEFAULT_SHARDS, workers)
    log(f"serial leg ({ROUNDS} rounds)...")
    serial_s, serial = _timed_campaign(None)
    # Leg order matters: the legacy leg runs first so the persistent
    # leg cannot inherit a warm pool, and the pool is torn down before
    # timing starts on neither (legacy forks per dispatch by design).
    log(f"legacy executor leg ({workers} workers)...")
    shutdown_worker_pool()
    legacy_s, legacy = _timed_campaign(
        _sharded_config(workers, shards, legacy=True))
    log(f"persistent pool leg ({workers} workers)...")
    shutdown_worker_pool()
    parallel_s, sharded = _timed_campaign(
        _sharded_config(workers, shards, legacy=False))
    shutdown_worker_pool()

    # The executor swap is pure scheduling: byte-identical artefacts.
    assert tables.table2_text(legacy) == tables.table2_text(sharded), (
        "legacy and persistent executors disagree on Table 2")
    assert ([r.address for round_ in legacy.rounds
             for r in round_.resolvers]
            == [r.address for round_ in sharded.rounds
                for r in round_.resolvers])
    assert (tuple((r.url, r.is_doh) for r in legacy.doh_records)
            == tuple((r.url, r.is_doh) for r in sharded.doh_records))
    # The sharded path re-partitions rng streams, so latencies differ
    # from the legacy serial run — but the discovered world must agree.
    assert ([len(r.resolvers) for r in sharded.rounds]
            == [len(r.resolvers) for r in serial.rounds])
    assert ({r.address for round_ in sharded.rounds
             for r in round_.resolvers}
            == {r.address for round_ in serial.rounds
                for r in round_.resolvers})
    assert len(sharded.doh_records) == len(serial.doh_records)

    return {
        "campaign": {
            "rounds": ROUNDS,
            "seed": SEED,
            "workers": workers,
            "shards": shards,
            "cpu_count": os.cpu_count() or 1,
            "serial_s": round(serial_s, 3),
            "legacy_s": round(legacy_s, 3),
            "parallel_s": round(parallel_s, 3),
            "speedup": (round(legacy_s / parallel_s, 3)
                        if parallel_s else None),
            "vs_serial": (round(serial_s / parallel_s, 3)
                          if parallel_s else None),
        },
    }


def validate_parallel_document(document: dict,
                               min_speedup: float = MIN_SPEEDUP) -> None:
    """Schema + speedup-floor gate for a BENCH_PARALLEL.json document.

    Raises :class:`ValueError` on the first violation. ``min_speedup``
    is the persistent-vs-legacy floor (the ISSUE gate is 2.0 at 4
    workers); wall-clock magnitudes are machine facts and never gated.
    """
    if "campaign" not in document:
        raise ValueError("missing key 'campaign'")
    campaign = document["campaign"]
    for key in ("rounds", "seed", "workers", "shards", "cpu_count",
                "serial_s", "legacy_s", "parallel_s", "speedup",
                "vs_serial"):
        if key not in campaign:
            raise ValueError(f"campaign: missing {key!r}")
    for key in ("serial_s", "legacy_s", "parallel_s"):
        value = campaign[key]
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(f"campaign: non-positive {key}: {value!r}")
    if campaign["workers"] < 1 or campaign["shards"] < 1:
        raise ValueError("campaign: workers and shards must be >= 1")
    speedup = campaign["speedup"]
    if not isinstance(speedup, (int, float)):
        raise ValueError(f"campaign: missing speedup: {speedup!r}")
    if speedup < min_speedup:
        raise ValueError(
            f"campaign: persistent-vs-legacy speedup {speedup} below "
            f"the {min_speedup}x floor at {campaign['workers']} workers")


def test_campaign_legacy_vs_persistent(bench_workers, parallel_pairs):
    """Pytest entry point: runs the bench, lands the pair in the
    session's BENCH_PARALLEL.json, and asserts the speedup floor."""
    document = run_parallel_bench(bench_workers)
    parallel_pairs["campaign"] = document["campaign"]
    validate_parallel_document(document)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4,
                        help="worker count for the sharded legs "
                             "(default: 4)")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "BENCH_PARALLEL.json"))
    parser.add_argument("--validate", metavar="PATH", default=None,
                        help="validate an existing document and exit")
    parser.add_argument("--min-speedup", type=float, default=MIN_SPEEDUP,
                        help="persistent-vs-legacy floor for --validate "
                             f"(default: {MIN_SPEEDUP})")
    args = parser.parse_args(argv)

    if args.validate is not None:
        try:
            with open(args.validate, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            validate_parallel_document(document,
                                       min_speedup=args.min_speedup)
        except (OSError, ValueError) as error:
            print(f"error: {args.validate}: {error}", file=sys.stderr)
            return 1
        print(f"{args.validate}: valid parallel benchmark document")
        return 0

    document = run_parallel_bench(
        max(1, args.workers), log=lambda text: print(text, file=sys.stderr))
    validate_parallel_document(document)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(document, indent=2, sort_keys=True))
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
