"""Section 5.2 extra: vetting DoT client networks for scanners."""

from repro.core.usage import NetworkScanMonitor


def test_x2_scan_detect(benchmark, netflow):
    dataset, report = netflow
    monitor = NetworkScanMonitor()
    client_blocks = [block.netblock for block in
                     sorted(report.netblocks,
                            key=lambda block: -block.flow_count)[:100]]
    vetting = benchmark.pedantic(
        monitor.vet_netblocks, args=(dataset.records, client_blocks),
        rounds=1, iterations=1)
    # Paper: "we do not get any alert on port-853 scanning activities
    # related to the client networks" — while the detector does fire on
    # the actual scanners present in the collection.
    assert not any(vetting.values())
    alerts = monitor.detect(dataset.records)
    assert {alert.src_netblock for alert in alerts} == set(
        dataset.scanner_netblocks)
    print()
    print(f"  client netblocks vetted: {len(vetting)}, flagged: 0; "
          f"true scanners detected: {len(set(a.src_netblock for a in alerts))}")
