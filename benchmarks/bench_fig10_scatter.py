"""Figure 10: per-client query time, clear text vs DoT/DoH."""

from repro.analysis import figures


def test_fig10(benchmark, performance):
    points = benchmark(figures.figure10_points, performance)
    assert points
    # Paper: "the majority of clients distribute near the y=x line" —
    # encrypted medians within a small band of the clear-text medians.
    near_line = sum(1 for do53, dot, doh in points
                    if abs(dot - do53) < 30.0 and abs(doh - do53) < 30.0)
    assert near_line / len(points) > 0.75
    faster = sum(1 for do53, dot, _ in points if dot < do53)
    print()
    print(f"  {len(points)} clients; {near_line} within 30ms of y=x; "
          f"DoT beat clear text for {faster} "
          f"({faster / len(points):.0%})")
