"""Table 7: performance without connection reuse from 4 vantages."""

from repro.analysis import tables


def test_table7(benchmark, suite):
    results = benchmark.pedantic(suite.no_reuse, rounds=1, iterations=1)
    vantages = {result.vantage.replace("controlled-", ""): result
                for result in results}
    assert set(vantages) == {"US", "NL", "AU", "HK"}
    # Paper shape: overhead is tens to hundreds of ms and grows with
    # distance to the resolver (NL is nearest to the DE self-built box).
    for result in results:
        assert result.dot_overhead_ms > 5.0
        assert result.doh_overhead_ms > 5.0
    assert vantages["AU"].dot_overhead_ms > vantages["NL"].dot_overhead_ms
    assert vantages["AU"].dot_overhead_ms > 100.0
    print()
    print(tables.table7_text(results))
