"""Table 4: reachability of public resolvers from 2 proxy platforms."""

from repro.analysis import tables


def test_table4(benchmark, reachability):
    rows = benchmark(tables.table4_rows, reachability)
    assert len(rows) == 24  # 2 platforms x 3 protocols x 4 resolvers
    rates = reachability.rates
    # Paper shape: clear text to Cloudflare fails ~16%, DoT ~1%, DoH <1%;
    # Google DoH is dead from China; Quad9 DoH SERVFAILs ~13% globally.
    assert rates("proxyrack", "Cloudflare", "do53")["failed"] > 0.10
    assert rates("proxyrack", "Cloudflare", "dot")["failed"] < 0.05
    assert rates("zhima", "Google", "doh")["failed"] > 0.98
    assert 0.06 < rates("proxyrack", "Quad9", "doh")["incorrect"] < 0.22
    assert rates("zhima", "Quad9", "doh")["incorrect"] < 0.02
    # The self-built resolver is reachable nearly everywhere.
    assert rates("proxyrack", "Self-built", "dot")["correct"] > 0.97
    print()
    print(tables.table4_text(reachability))
