"""Figure 9: per-country query performance with connection reuse."""

from repro.analysis import figures


def test_fig9(benchmark, performance):
    series = benchmark(figures.figure9_series, performance, 3)
    assert series, "expected per-country summaries"
    summary = performance.global_summary()
    # Paper: global overhead of a few milliseconds (avg/median 5/9 ms DoT
    # and 8/6 ms DoH); India *gains* ~100 ms via Cloudflare DoH.
    assert -5.0 < summary["dot_median"] < 20.0
    assert -5.0 < summary["doh_median"] < 25.0
    by_country = {row["country"]: row for row in series}
    if "IN" in by_country:
        assert by_country["IN"]["doh_median_ms"] < -40.0
    print()
    print(f"  global: DoT {summary['dot_avg']:+.1f}/"
          f"{summary['dot_median']:+.1f} ms, "
          f"DoH {summary['doh_avg']:+.1f}/"
          f"{summary['doh_median']:+.1f} ms "
          f"(n={summary['clients']:.0f})")
    for row in series[:10]:
        print(f"  {row['country']}: n={row['clients']:4.0f} "
              f"DoT {row['dot_avg_ms']:+7.1f}/{row['dot_median_ms']:+7.1f} "
              f"DoH {row['doh_avg_ms']:+7.1f}/{row['doh_median_ms']:+7.1f}")
