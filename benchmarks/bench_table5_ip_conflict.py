"""Table 5: ports open on 1.1.1.1 for clients failing Cloudflare DoT."""

from repro.analysis import tables


def test_table5(benchmark, suite, reachability):
    diagnosis = suite.diagnosis()
    rows = benchmark(tables.table5_rows, diagnosis)
    assert rows[0][0] == "None"
    # Every diagnosed client contradicts the genuine resolver profile
    # (ports 53/80/443/853 + the Cloudflare front page).
    assert diagnosis.conflict_count() == len(diagnosis.clients)
    # Paper: web-capable devices (routers, modems) are common among the
    # conflicting hosts.
    census = diagnosis.port_census()
    if diagnosis.clients:
        assert census.get(80, 0) + diagnosis.none_open_count() > 0
    print()
    print(tables.table5_text(diagnosis))
    print(f"  blackholed: {diagnosis.none_open_count()}, "
          f"crypto-hijacked routers: {diagnosis.hijacked_count()}")
